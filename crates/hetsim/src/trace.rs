//! Operation traces: what a kernel *does*, independent of where it runs.
//!
//! A kernel executes once, functionally, against an [`Engine`]; the engine
//! records the operation stream as a [`Trace`]. The same trace is then
//! costed under different timing models (CPU with cache, accelerator lanes
//! behind the shared AXI port, with or without the CapChecker in the path),
//! which is how the five system configurations of §6.3 are compared on
//! identical work.
//!
//! [`Engine`]: crate::engine::Engine

use std::fmt;

/// One recorded operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// `units` of data-path work (one unit ≈ one ALU/FPU op).
    Compute(u64),
    /// A memory access of `bytes` at `addr` on object `object`.
    Mem {
        /// Physical byte address.
        addr: u64,
        /// Access width in bytes.
        bytes: u16,
        /// `true` for stores.
        write: bool,
        /// Index of the object within the task's buffer list.
        object: u16,
    },
    /// A bulk copy (the memcpy idiom; CHERI CPUs move 16 bytes per
    /// instruction here, plain 64-bit CPUs 8).
    Copy {
        /// Source byte address.
        src: u64,
        /// Destination byte address.
        dst: u64,
        /// Bytes moved.
        bytes: u64,
    },
}

/// An append-only operation trace with consecutive-compute coalescing.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    ops: Vec<TraceOp>,
    /// Non-compute ops, maintained on push so [`Trace::mem_ops`] is O(1)
    /// (the timing cores size their per-lane arrays from it).
    mem_op_count: u64,
}

// Retired trace buffers, recycled by [`Trace::new`]. Kernel traces run to
// hundreds of thousands of ops; allocating that arena fresh per run costs
// more in page faults and growth copies than recording into it does, so
// dropping a large trace parks its buffer here instead (bounded, per
// thread, cleared before reuse — recording behaviour is unchanged).
thread_local! {
    static TRACE_POOL: std::cell::RefCell<Vec<Vec<TraceOp>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Buffers smaller than this are left to the allocator; only arenas whose
/// reallocation actually shows up in profiles are worth parking.
const POOL_MIN_CAPACITY: usize = 4096;
/// At most this many parked buffers per thread.
const POOL_MAX_BUFFERS: usize = 4;

impl Trace {
    /// Creates an empty trace, reusing a previously retired buffer when
    /// one is parked (warm pages, grown capacity).
    #[must_use]
    pub fn new() -> Trace {
        let ops = TRACE_POOL
            .with(|pool| pool.borrow_mut().pop())
            .unwrap_or_default();
        debug_assert!(ops.is_empty(), "pooled buffers are cleared on retire");
        Trace {
            ops,
            mem_op_count: 0,
        }
    }

    /// Appends an operation, merging consecutive [`TraceOp::Compute`] runs.
    #[inline]
    pub fn push(&mut self, op: TraceOp) {
        if let TraceOp::Compute(units) = op {
            if let Some(TraceOp::Compute(prev)) = self.ops.last_mut() {
                *prev += units;
                return;
            }
        } else {
            self.mem_op_count += 1;
        }
        self.ops.push(op);
    }

    /// The recorded operations in program order.
    #[must_use]
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Number of recorded operations (after coalescing).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total data-path work units.
    #[must_use]
    pub fn compute_units(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                TraceOp::Compute(u) => *u,
                _ => 0,
            })
            .sum()
    }

    /// Total memory traffic in bytes (copies count both directions).
    #[must_use]
    pub fn mem_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                TraceOp::Mem { bytes, .. } => u64::from(*bytes),
                TraceOp::Copy { bytes, .. } => 2 * *bytes,
                TraceOp::Compute(_) => 0,
            })
            .sum()
    }

    /// Number of discrete memory operations (copies count as one).
    #[must_use]
    #[inline]
    pub fn mem_ops(&self) -> u64 {
        debug_assert_eq!(
            self.mem_op_count,
            self.ops
                .iter()
                .filter(|op| !matches!(op, TraceOp::Compute(_)))
                .count() as u64
        );
        self.mem_op_count
    }

    /// Coalesces runs of contiguous same-direction, same-object accesses
    /// into AXI-style bursts of at most `max_burst_bytes`.
    ///
    /// This is what an HLS DMA engine does to streaming loops (`memcpy`
    /// inference / `#pragma HLS burst`): the byte traffic is unchanged,
    /// but the request count — and therefore the per-request latency
    /// exposure and CapChecker occupancy — drops dramatically.
    ///
    /// # Panics
    ///
    /// Panics if `max_burst_bytes` is zero or exceeds `u16::MAX`.
    #[must_use]
    pub fn coalesce_bursts(&self, max_burst_bytes: u64) -> Trace {
        assert!(
            (1..=u64::from(u16::MAX)).contains(&max_burst_bytes),
            "burst length must fit the request descriptor"
        );
        let mut out = Trace::new();
        let mut pending: Option<(u64, u64, bool, u16)> = None; // addr, bytes, write, object
        let flush = |out: &mut Trace, p: &mut Option<(u64, u64, bool, u16)>| {
            if let Some((addr, bytes, write, object)) = p.take() {
                out.push(TraceOp::Mem {
                    addr,
                    bytes: bytes as u16,
                    write,
                    object,
                });
            }
        };
        for op in &self.ops {
            match *op {
                TraceOp::Mem {
                    addr,
                    bytes,
                    write,
                    object,
                } => match &mut pending {
                    Some((paddr, pbytes, pwrite, pobject))
                        if *pwrite == write
                            && *pobject == object
                            && *paddr + *pbytes == addr
                            && *pbytes + u64::from(bytes) <= max_burst_bytes =>
                    {
                        *pbytes += u64::from(bytes);
                    }
                    _ => {
                        flush(&mut out, &mut pending);
                        pending = Some((addr, u64::from(bytes), write, object));
                    }
                },
                other => {
                    flush(&mut out, &mut pending);
                    out.push(other);
                }
            }
        }
        flush(&mut out, &mut pending);
        out
    }
}

impl Drop for Trace {
    fn drop(&mut self) {
        if self.ops.capacity() < POOL_MIN_CAPACITY {
            return;
        }
        let mut ops = std::mem::take(&mut self.ops);
        TRACE_POOL.with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < POOL_MAX_BUFFERS {
                ops.clear();
                pool.push(ops);
            }
        });
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace: {} ops, {} compute units, {} mem bytes",
            self.len(),
            self.compute_units(),
            self.mem_bytes()
        )
    }
}

impl FromIterator<TraceOp> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceOp>>(iter: I) -> Trace {
        let mut t = Trace::new();
        for op in iter {
            t.push(op);
        }
        t
    }
}

impl Extend<TraceOp> for Trace {
    fn extend<I: IntoIterator<Item = TraceOp>>(&mut self, iter: I) {
        for op in iter {
            self.push(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_ops_coalesce() {
        let mut t = Trace::new();
        t.push(TraceOp::Compute(3));
        t.push(TraceOp::Compute(4));
        t.push(TraceOp::Mem {
            addr: 0,
            bytes: 4,
            write: false,
            object: 0,
        });
        t.push(TraceOp::Compute(1));
        assert_eq!(t.len(), 3);
        assert_eq!(t.compute_units(), 8);
    }

    #[test]
    fn traffic_accounting() {
        let t: Trace = [
            TraceOp::Mem {
                addr: 0,
                bytes: 4,
                write: false,
                object: 0,
            },
            TraceOp::Mem {
                addr: 4,
                bytes: 8,
                write: true,
                object: 1,
            },
            TraceOp::Copy {
                src: 0,
                dst: 64,
                bytes: 32,
            },
        ]
        .into_iter()
        .collect();
        assert_eq!(t.mem_bytes(), 4 + 8 + 64);
        assert_eq!(t.mem_ops(), 3);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.compute_units(), 0);
        assert_eq!(t.mem_bytes(), 0);
    }

    #[test]
    fn bursts_merge_contiguous_streams() {
        let t: Trace = (0..64u64)
            .map(|i| TraceOp::Mem {
                addr: 0x100 + i * 4,
                bytes: 4,
                write: false,
                object: 0,
            })
            .collect();
        let b = t.coalesce_bursts(256);
        assert_eq!(b.mem_ops(), 1, "one 256-byte burst");
        assert_eq!(b.mem_bytes(), t.mem_bytes(), "traffic preserved");
        // Burst length cap splits longer streams.
        let b64 = t.coalesce_bursts(64);
        assert_eq!(b64.mem_ops(), 4);
    }

    #[test]
    fn bursts_never_cross_direction_object_or_gaps() {
        let t: Trace = [
            TraceOp::Mem {
                addr: 0,
                bytes: 4,
                write: false,
                object: 0,
            },
            TraceOp::Mem {
                addr: 4,
                bytes: 4,
                write: true,
                object: 0,
            }, // direction flip
            TraceOp::Mem {
                addr: 8,
                bytes: 4,
                write: true,
                object: 1,
            }, // object flip
            TraceOp::Mem {
                addr: 16,
                bytes: 4,
                write: true,
                object: 1,
            }, // gap
        ]
        .into_iter()
        .collect();
        assert_eq!(t.coalesce_bursts(4096).mem_ops(), 4);
    }

    #[test]
    fn compute_breaks_a_burst() {
        let t: Trace = [
            TraceOp::Mem {
                addr: 0,
                bytes: 8,
                write: false,
                object: 0,
            },
            TraceOp::Compute(5),
            TraceOp::Mem {
                addr: 8,
                bytes: 8,
                write: false,
                object: 0,
            },
        ]
        .into_iter()
        .collect();
        let b = t.coalesce_bursts(4096);
        assert_eq!(b.mem_ops(), 2);
        assert_eq!(b.compute_units(), 5);
    }
}
