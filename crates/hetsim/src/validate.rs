//! A cycle-stepped reference simulator for the accelerator memory path.
//!
//! [`crate::timing::simulate_accel_system`] is an event-driven model built
//! for speed (it costs million-operation traces in milliseconds). This
//! module steps the same system **cycle by cycle** — explicit round-robin
//! arbitration, explicit outstanding-request windows, explicit pipeline
//! drain — and exists to *validate* the fast model: the two must agree
//! closely on any workload, and the test suite checks that they do.
//!
//! Use the event model for experiments; use this one when you change the
//! timing code and want ground truth.

use crate::ids::Cycles;
use crate::timing::{distribute_over_lanes, AccelReport, AccelTask, BusConfig};
use crate::trace::TraceOp;
use std::collections::VecDeque;

#[derive(Debug)]
struct LaneState {
    task: usize,
    ops: Vec<TraceOp>,
    next: usize,
    /// Cycle at which the lane's datapath/issue port is free again.
    busy_until: u64,
    /// Completion times of in-flight requests.
    inflight: VecDeque<u64>,
    window: usize,
    compute_per_cycle: f64,
    /// Fractional compute carried between ops.
    done: bool,
}

impl LaneState {
    fn wants_bus(&self, now: u64) -> bool {
        !self.done
            && now >= self.busy_until
            && self.inflight.len() < self.window
            && matches!(
                self.ops.get(self.next),
                Some(TraceOp::Mem { .. } | TraceOp::Copy { .. })
            )
    }
}

/// Cycle-accurate counterpart of
/// [`simulate_accel_system`](crate::timing::simulate_accel_system).
///
/// Semantics: each cycle, lanes retire completed requests; a round-robin
/// arbiter grants the bus to at most one ready lane; granted requests
/// occupy the bus for their beats and complete after the memory (and
/// checker) latency; compute occupies the lane's datapath.
#[must_use]
pub fn simulate_accel_system_cycle_accurate(
    tasks: &[AccelTask<'_>],
    bus: &BusConfig,
) -> AccelReport {
    simulate_cycle_accurate_inner(tasks, bus, true)
}

/// The validator with the bulk-advance fast path disabled: `now` steps by
/// exactly one cycle, always. Only the equivalence test should need this.
#[must_use]
pub fn simulate_accel_system_single_stepped(
    tasks: &[AccelTask<'_>],
    bus: &BusConfig,
) -> AccelReport {
    simulate_cycle_accurate_inner(tasks, bus, false)
}

fn simulate_cycle_accurate_inner(
    tasks: &[AccelTask<'_>],
    bus: &BusConfig,
    bulk_advance: bool,
) -> AccelReport {
    let mut lanes: Vec<LaneState> = Vec::new();
    for (t_idx, task) in tasks.iter().enumerate() {
        for ops in distribute_over_lanes(task.trace, task.cfg.lanes.max(1) as usize) {
            lanes.push(LaneState {
                task: t_idx,
                ops,
                next: 0,
                busy_until: task.start,
                inflight: VecDeque::new(),
                window: task.cfg.outstanding.max(1) as usize,
                compute_per_cycle: task.cfg.compute_per_cycle.max(1e-9),
                done: false,
            });
        }
    }

    let latency = bus.mem_latency + bus.checker_latency;
    let mut per_task: Vec<Cycles> = tasks.iter().map(|t| t.start).collect();
    let mut bus_free_at = 0u64;
    let mut bus_beats = 0u64;
    let mut rr = 0usize;
    let mut now = 0u64;
    // Hard stop far beyond any plausible makespan, so a model bug cannot
    // hang the tests.
    let limit = 1u64 << 34;

    while now < limit {
        let mut all_done = true;
        for lane in &mut lanes {
            if lane.done {
                continue;
            }
            // Retire completions.
            while lane.inflight.front().is_some_and(|c| *c <= now) {
                lane.inflight.pop_front();
            }
            // Start compute the moment the lane is free and compute is
            // next (one compute block at a time).
            if now >= lane.busy_until {
                if let Some(TraceOp::Compute(units)) = lane.ops.get(lane.next) {
                    let cycles = (*units as f64 / lane.compute_per_cycle).ceil().max(1.0) as u64;
                    lane.busy_until = now + cycles;
                    lane.next += 1;
                }
            }
            if lane.next >= lane.ops.len() && lane.inflight.is_empty() && now >= lane.busy_until {
                lane.done = true;
                per_task[lane.task] = per_task[lane.task].max(now);
            } else {
                all_done = false;
            }
        }
        if all_done {
            break;
        }

        // Round-robin arbitration: one grant per bus-free cycle.
        if now >= bus_free_at {
            let n = lanes.len();
            for k in 0..n {
                let li = (rr + k) % n;
                if lanes[li].wants_bus(now) {
                    let beats = match lanes[li].ops[lanes[li].next] {
                        TraceOp::Mem { bytes, .. } => {
                            u64::from(bytes).div_ceil(bus.beat_bytes).max(1)
                        }
                        TraceOp::Copy { bytes, .. } => 2 * bytes.div_ceil(bus.beat_bytes).max(1),
                        TraceOp::Compute(_) => unreachable!("wants_bus excludes compute"),
                    };
                    lanes[li].next += 1;
                    lanes[li].busy_until = now + beats;
                    lanes[li].inflight.push_back(now + beats + latency);
                    bus_free_at = now + beats;
                    bus_beats += beats;
                    rr = (li + 1) % n;
                    break;
                }
            }
        }
        // Bulk-advance fast path: between here and the next scheduled
        // event — a compute block or bus occupancy ending (`busy_until`),
        // an in-flight request completing, or the bus freeing up — every
        // cycle is provably a no-op: nothing retires, no compute can
        // start (a lane whose next op is compute started it this cycle),
        // and no grant can happen (either the bus stays busy through the
        // stretch, or it was free this cycle and every eligible request
        // was already considered). Skipping straight to the earliest such
        // event visits exactly the cycles where state can change, so the
        // result is cycle-for-cycle identical to stepping — which the
        // single-stepped equivalence test pins.
        now = if bulk_advance {
            let mut next = u64::MAX;
            for lane in &lanes {
                if lane.done {
                    continue;
                }
                if lane.busy_until > now {
                    next = next.min(lane.busy_until);
                }
                if let Some(c) = lane.inflight.front() {
                    if *c > now {
                        next = next.min(*c);
                    }
                }
            }
            if bus_free_at > now {
                next = next.min(bus_free_at);
            }
            if next == u64::MAX {
                now + 1
            } else {
                next.max(now + 1)
            }
        } else {
            now + 1
        };
    }

    let makespan = per_task.iter().copied().max().unwrap_or(0);
    AccelReport {
        per_task,
        makespan,
        bus_beats,
        bus_utilization: if makespan == 0 {
            0.0
        } else {
            bus_beats as f64 / makespan as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::{simulate_accel_system, AccelTimingConfig};
    use crate::trace::Trace;

    fn mem_trace(n: u64, stride: u64) -> Trace {
        (0..n)
            .map(|i| TraceOp::Mem {
                addr: i * stride,
                bytes: 8,
                write: false,
                object: 0,
            })
            .collect()
    }

    fn mixed_trace(n: u64) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            t.push(TraceOp::Compute(7));
            t.push(TraceOp::Mem {
                addr: i * 64,
                bytes: 4,
                write: i % 3 == 0,
                object: 0,
            });
        }
        t
    }

    fn agree_within(tasks: &[AccelTask<'_>], bus: &BusConfig, tolerance: f64) {
        let fast = simulate_accel_system(tasks, bus);
        let exact = simulate_accel_system_cycle_accurate(tasks, bus);
        let a = fast.makespan as f64;
        let b = exact.makespan as f64;
        let rel = (a - b).abs() / b.max(1.0);
        assert!(
            rel <= tolerance,
            "models disagree: event {a} vs cycle-accurate {b} ({:.1}% off)",
            rel * 100.0
        );
        assert_eq!(fast.bus_beats, exact.bus_beats, "identical traffic");
    }

    #[test]
    fn models_agree_on_memory_bound_single_lane() {
        let t = mem_trace(5_000, 64);
        let task = AccelTask {
            trace: &t,
            cfg: AccelTimingConfig {
                lanes: 1,
                compute_per_cycle: 1.0,
                outstanding: 4,
            },
            start: 0,
        };
        agree_within(&[task], &BusConfig::default(), 0.05);
    }

    #[test]
    fn models_agree_on_compute_heavy_wide_datapath() {
        let mut t = Trace::new();
        t.push(TraceOp::Compute(200_000));
        for i in 0..100u64 {
            t.push(TraceOp::Mem {
                addr: i * 8,
                bytes: 8,
                write: false,
                object: 0,
            });
        }
        let task = AccelTask {
            trace: &t,
            cfg: AccelTimingConfig {
                lanes: 8,
                compute_per_cycle: 4.0,
                outstanding: 8,
            },
            start: 0,
        };
        agree_within(&[task], &BusConfig::default(), 0.05);
    }

    #[test]
    fn models_agree_on_contended_multi_task_system() {
        let t1 = mixed_trace(2_000);
        let t2 = mem_trace(3_000, 32);
        let tasks = vec![
            AccelTask {
                trace: &t1,
                cfg: AccelTimingConfig {
                    lanes: 4,
                    compute_per_cycle: 2.0,
                    outstanding: 4,
                },
                start: 100,
            },
            AccelTask {
                trace: &t2,
                cfg: AccelTimingConfig {
                    lanes: 2,
                    compute_per_cycle: 1.0,
                    outstanding: 2,
                },
                start: 0,
            },
        ];
        agree_within(&tasks, &BusConfig::default(), 0.10);
    }

    #[test]
    fn models_agree_with_the_checker_inserted() {
        let t = mixed_trace(2_000);
        let task = AccelTask {
            trace: &t,
            cfg: AccelTimingConfig {
                lanes: 2,
                compute_per_cycle: 2.0,
                outstanding: 4,
            },
            start: 0,
        };
        agree_within(&[task], &BusConfig::default().with_checker(2), 0.10);
    }

    #[test]
    fn bulk_advance_is_cycle_for_cycle_identical_to_stepping() {
        let t1 = mixed_trace(1_000);
        let t2 = mem_trace(1_500, 32);
        let mut compute_heavy = Trace::new();
        compute_heavy.push(TraceOp::Compute(100_000));
        compute_heavy.push(TraceOp::Mem {
            addr: 0,
            bytes: 8,
            write: false,
            object: 0,
        });
        let systems: Vec<(Vec<AccelTask<'_>>, BusConfig)> = vec![
            (
                vec![AccelTask {
                    trace: &compute_heavy,
                    cfg: AccelTimingConfig {
                        lanes: 1,
                        compute_per_cycle: 1.0,
                        outstanding: 1,
                    },
                    start: 3,
                }],
                BusConfig::default(),
            ),
            (
                vec![
                    AccelTask {
                        trace: &t1,
                        cfg: AccelTimingConfig {
                            lanes: 4,
                            compute_per_cycle: 2.0,
                            outstanding: 4,
                        },
                        start: 100,
                    },
                    AccelTask {
                        trace: &t2,
                        cfg: AccelTimingConfig {
                            lanes: 2,
                            compute_per_cycle: 1.0,
                            outstanding: 2,
                        },
                        start: 0,
                    },
                ],
                BusConfig::default().with_checker(2),
            ),
        ];
        for (tasks, bus) in systems {
            assert_eq!(
                simulate_accel_system_cycle_accurate(&tasks, &bus),
                simulate_accel_system_single_stepped(&tasks, &bus),
                "bulk advance diverged on a {}-task system",
                tasks.len()
            );
        }
    }

    #[test]
    fn checker_overhead_shape_holds_in_the_exact_model_too() {
        // The headline claim survives ground truth: a pipelined checker
        // adds only a few percent even cycle-by-cycle.
        let t = mixed_trace(3_000);
        let mk = |bus: &BusConfig| {
            simulate_accel_system_cycle_accurate(
                &[AccelTask {
                    trace: &t,
                    cfg: AccelTimingConfig {
                        lanes: 4,
                        compute_per_cycle: 2.0,
                        outstanding: 8,
                    },
                    start: 0,
                }],
                bus,
            )
            .makespan
        };
        let plain = mk(&BusConfig::default());
        let checked = mk(&BusConfig::default().with_checker(1));
        let overhead = (checked as f64 - plain as f64) / plain as f64;
        assert!(overhead >= 0.0);
        assert!(overhead < 0.05, "cycle-accurate overhead {overhead}");
    }
}
