//! Property tests for the event-wheel timing core.
//!
//! The wheel pre-folds every task's trace into a flat `LaneEntry` arena
//! and advances lane cursors by argmin scan; a bug that skipped an entry,
//! advanced a cursor twice, or mis-merged the runner-up bound would
//! silently drop registered events. These properties pin the wheel to the
//! retained naive heap core (`simulate_accel_system_naive`) on randomized
//! workloads — every registered memory event must be granted exactly once
//! (beat accounting) and every per-task completion cycle must match the
//! reference scheduler cycle-for-cycle.

use hetsim::timing::{
    simulate_accel_system, simulate_accel_system_naive, AccelTask, AccelTimingConfig, BusConfig,
};
use hetsim::{BusFaultConfig, Trace, TraceOp};
use proptest::prelude::*;

/// One randomized trace op. Compute units are kept small so traces stay
/// cheap; addresses stride so coalescing both does and doesn't fire.
fn arb_op() -> impl Strategy<Value = TraceOp> {
    prop_oneof![
        (0u64..0x4000, 1u16..64, any::<bool>(), 0u16..4).prop_map(
            |(addr, bytes, write, object)| TraceOp::Mem {
                addr: 0x1000 + addr,
                bytes,
                write,
                object,
            }
        ),
        (1u64..2000).prop_map(TraceOp::Compute),
        (0u64..0x1000, 0u64..0x1000, 1u64..256).prop_map(|(src, dst, bytes)| TraceOp::Copy {
            src: 0x1000 + src,
            dst: 0x5000 + dst,
            bytes,
        }),
    ]
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(arb_op(), 0..120).prop_map(|ops| {
        let mut t = Trace::new();
        for op in ops {
            t.push(op);
        }
        t
    })
}

fn arb_cfg() -> impl Strategy<Value = AccelTimingConfig> {
    (1u32..9, 0usize..5, 1u32..6).prop_map(|(lanes, cpc_ix, outstanding)| AccelTimingConfig {
        lanes,
        // Drawn from the profiles real kernels use, including sub-1.0
        // (multi-cycle ops) — f64 division by each must stay bit-exact
        // between the wheel's hoisted form and the naive per-op form.
        compute_per_cycle: [0.5, 1.0, 2.0, 4.0, 16.0][cpc_ix],
        outstanding,
    })
}

fn arb_bus() -> impl Strategy<Value = BusConfig> {
    (
        prop_oneof![Just(4u64), Just(8), Just(16)],
        1u64..60,
        0u64..4,
        0u64..6,
        0u64..20,
        0u64..9,
    )
        .prop_map(
            |(beat_bytes, mem_latency, checker, stall_every, stall_cycles, drop_every)| BusConfig {
                beat_bytes,
                mem_latency,
                checker_latency: checker,
                faults: BusFaultConfig {
                    stall_every,
                    stall_cycles,
                    drop_every,
                },
            },
        )
}

proptest! {
    /// Cycle-for-cycle equivalence on arbitrary multi-task systems: if the
    /// wheel ever skipped or duplicated a registered event, some task's
    /// completion cycle, the total beat count, or the utilization ratio
    /// would diverge from the heap scheduler that pops every event
    /// individually.
    #[test]
    fn wheel_never_skips_a_registered_event(
        traces in prop::collection::vec(arb_trace(), 1..5),
        cfgs in prop::collection::vec(arb_cfg(), 5..6),
        starts in prop::collection::vec(0u64..400, 5..6),
        bus in arb_bus(),
    ) {
        let tasks: Vec<AccelTask<'_>> = traces
            .iter()
            .enumerate()
            .map(|(i, trace)| AccelTask {
                trace,
                cfg: cfgs[i % cfgs.len()],
                start: starts[i % starts.len()],
            })
            .collect();
        let wheel = simulate_accel_system(&tasks, &bus);
        let naive = simulate_accel_system_naive(&tasks, &bus);
        prop_assert_eq!(&wheel, &naive);
        prop_assert_eq!(wheel.per_task.len(), tasks.len());
        for (task, finish) in tasks.iter().zip(&wheel.per_task) {
            prop_assert!(*finish >= task.start,
                "a task finished before its start offset");
        }
    }

    /// Beat accounting on a healthy bus: every memory event registers
    /// ceil(bytes/beat) beats (min 1) and the wheel must grant each beat
    /// exactly once — no drops without a fault model armed.
    #[test]
    fn healthy_bus_grants_every_registered_beat(
        trace in arb_trace(),
        cfg in arb_cfg(),
        beat_bytes in prop_oneof![Just(4u64), Just(8), Just(16)],
    ) {
        let bus = BusConfig {
            beat_bytes,
            ..BusConfig::default()
        };
        let expected: u64 = trace
            .ops()
            .iter()
            .map(|op| match *op {
                TraceOp::Mem { bytes, .. } =>
                    u64::from(bytes).div_ceil(beat_bytes).max(1),
                // A copy is a read stream plus a write stream.
                TraceOp::Copy { bytes, .. } =>
                    2 * bytes.div_ceil(beat_bytes).max(1),
                TraceOp::Compute(_) => 0,
            })
            .sum();
        let tasks = [AccelTask { trace: &trace, cfg, start: 0 }];
        let wheel = simulate_accel_system(&tasks, &bus);
        prop_assert_eq!(wheel.bus_beats, expected,
            "wheel granted a different number of beats than were registered");
    }
}
