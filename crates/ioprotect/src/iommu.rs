//! An IOMMU model: page-granular protection with an IOTLB.

use crate::{require_valid, GrantError, Granularity, IoProtection, MechanismProperties};
use cheri::{Capability, Perms};
use hetsim::{Access, AccessKind, Denial, DenyReason, ObjectId, TaskId};
use std::collections::HashMap;

/// Configuration for an [`Iommu`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IommuConfig {
    /// Page size in bytes (the paper evaluates 4 kB).
    pub page_size: u64,
    /// IOTLB entries (fully associative, LRU-free random-ish eviction is
    /// immaterial to the results; we track hit/miss counts only).
    pub iotlb_entries: usize,
}

impl Default for IommuConfig {
    fn default() -> IommuConfig {
        IommuConfig {
            page_size: 4096,
            iotlb_entries: 32,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct PagePerms {
    read: bool,
    write: bool,
}

pub use obs::stats::IotlbStats;

/// An IOMMU: device accesses are checked (and notionally translated)
/// against per-task page mappings.
///
/// Protection granularity is the page: a buffer that does not fill its
/// pages leaves the slack reachable, and two buffers sharing a page are
/// mutually exposed — the intra-page vulnerability of §2. Entry count
/// scales with buffer *size* (pages), which is Figure 12's comparison.
#[derive(Clone, Debug)]
pub struct Iommu {
    cfg: IommuConfig,
    /// (task, page number) → permissions.
    pages: HashMap<(TaskId, u64), PagePerms>,
    iotlb: Vec<(TaskId, u64)>,
    stats: IotlbStats,
}

impl Iommu {
    /// Creates an IOMMU with the given page size and IOTLB.
    #[must_use]
    pub fn new(cfg: IommuConfig) -> Iommu {
        Iommu {
            cfg,
            pages: HashMap::new(),
            iotlb: Vec::new(),
            stats: IotlbStats::default(),
        }
    }

    /// The configured page size.
    #[must_use]
    pub fn page_size(&self) -> u64 {
        self.cfg.page_size
    }

    /// IOTLB hit/miss counters.
    #[must_use]
    pub fn iotlb_stats(&self) -> IotlbStats {
        self.stats
    }

    /// Entries an IOMMU needs for a buffer of `size` bytes under the
    /// paper's fairness rule for Figure 12 — at most one buffer per page,
    /// so every buffer occupies `ceil(size / page)` whole pages.
    #[must_use]
    pub fn entries_for_buffer(page_size: u64, size: u64) -> u64 {
        size.div_ceil(page_size).max(1)
    }

    fn touch_iotlb(&mut self, key: (TaskId, u64)) {
        if let Some(pos) = self.iotlb.iter().position(|k| *k == key) {
            self.iotlb.remove(pos);
            self.iotlb.push(key);
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            if self.iotlb.len() >= self.cfg.iotlb_entries {
                self.iotlb.remove(0);
            }
            self.iotlb.push(key);
        }
    }
}

impl Default for Iommu {
    fn default() -> Iommu {
        Iommu::new(IommuConfig::default())
    }
}

impl IoProtection for Iommu {
    fn name(&self) -> &'static str {
        "IOMMU"
    }

    fn properties(&self) -> MechanismProperties {
        MechanismProperties::iommu()
    }

    fn granularity(&self) -> Granularity {
        Granularity::Page
    }

    fn grant(&mut self, task: TaskId, _: ObjectId, cap: &Capability) -> Result<(), GrantError> {
        require_valid(cap)?;
        let read = cap.perms().contains(Perms::LOAD);
        let write = cap.perms().contains(Perms::STORE);
        let first = cap.base() / self.cfg.page_size;
        let last = ((cap.top() - 1).min(u64::MAX as u128) as u64) / self.cfg.page_size;
        for page in first..=last {
            let e = self.pages.entry((task, page)).or_default();
            e.read |= read;
            e.write |= write;
        }
        Ok(())
    }

    fn revoke_task(&mut self, task: TaskId) {
        self.pages.retain(|(t, _), _| *t != task);
        self.iotlb.retain(|(t, _)| *t != task);
    }

    fn check(&mut self, access: &Access) -> Result<(), Denial> {
        let first = access.addr / self.cfg.page_size;
        let last = (access.addr + access.len.saturating_sub(1)) / self.cfg.page_size;
        for page in first..=last {
            self.touch_iotlb((access.task, page));
            match self.pages.get(&(access.task, page)) {
                None => {
                    return Err(Denial {
                        access: *access,
                        reason: DenyReason::NoEntry,
                    })
                }
                Some(p) => {
                    let allowed = match access.kind {
                        AccessKind::Read => p.read,
                        AccessKind::Write => p.write,
                    };
                    if !allowed {
                        return Err(Denial {
                            access: *access,
                            reason: DenyReason::MissingPermission,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn entries_in_use(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::MasterId;

    fn rw_cap(base: u64, len: u64) -> Capability {
        Capability::root()
            .set_bounds(base, len)
            .unwrap()
            .and_perms(Perms::RW)
            .unwrap()
    }

    fn read(task: u32, addr: u64, len: u64) -> Access {
        Access::read(MasterId(0), TaskId(task), addr, len)
    }

    #[test]
    fn page_mapping_grants_the_whole_page() {
        let mut mmu = Iommu::default();
        // A 64-byte buffer in the middle of a page…
        mmu.grant(TaskId(1), ObjectId(0), &rw_cap(0x1100, 64))
            .unwrap();
        assert!(mmu.check(&read(1, 0x1100, 64)).is_ok());
        // …leaves the page slack exposed: the intra-page weakness.
        assert!(
            mmu.check(&read(1, 0x1000, 16)).is_ok(),
            "page slack is reachable"
        );
        assert!(mmu.check(&read(1, 0x1fff, 1)).is_ok());
        // The neighbouring page is not mapped.
        assert!(mmu.check(&read(1, 0x2000, 1)).is_err());
    }

    #[test]
    fn cross_task_isolation_holds_at_pages() {
        let mut mmu = Iommu::default();
        mmu.grant(TaskId(1), ObjectId(0), &rw_cap(0x1000, 4096))
            .unwrap();
        assert!(mmu.check(&read(2, 0x1000, 4)).is_err());
    }

    #[test]
    fn entry_count_scales_with_size() {
        let mut mmu = Iommu::default();
        mmu.grant(TaskId(1), ObjectId(0), &rw_cap(0, 16 * 4096))
            .unwrap();
        assert_eq!(mmu.entries_in_use(), 16);
        assert_eq!(Iommu::entries_for_buffer(4096, 16 * 4096), 16);
        assert_eq!(Iommu::entries_for_buffer(4096, 1), 1);
        assert_eq!(Iommu::entries_for_buffer(4096, 4097), 2);
    }

    #[test]
    fn straddling_access_needs_both_pages() {
        let mut mmu = Iommu::default();
        mmu.grant(TaskId(1), ObjectId(0), &rw_cap(0x1000, 4096))
            .unwrap();
        // 8 bytes straddling into the unmapped page 2 fail.
        assert!(mmu.check(&read(1, 0x1ffc, 8)).is_err());
    }

    #[test]
    fn write_permission_is_separate() {
        let mut mmu = Iommu::default();
        let ro = Capability::root()
            .set_bounds(0x1000, 64)
            .unwrap()
            .and_perms(Perms::LOAD)
            .unwrap();
        mmu.grant(TaskId(1), ObjectId(0), &ro).unwrap();
        let w = Access::write(MasterId(0), TaskId(1), 0x1000, 4);
        assert_eq!(
            mmu.check(&w).unwrap_err().reason,
            DenyReason::MissingPermission
        );
    }

    #[test]
    fn iotlb_counts_hits_and_misses() {
        let mut mmu = Iommu::default();
        mmu.grant(TaskId(1), ObjectId(0), &rw_cap(0x1000, 4096))
            .unwrap();
        for _ in 0..10 {
            mmu.check(&read(1, 0x1004, 4)).unwrap();
        }
        let s = mmu.iotlb_stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 9);
    }

    #[test]
    fn revoke_unmaps_and_flushes() {
        let mut mmu = Iommu::default();
        mmu.grant(TaskId(1), ObjectId(0), &rw_cap(0x1000, 4096))
            .unwrap();
        mmu.revoke_task(TaskId(1));
        assert_eq!(mmu.entries_in_use(), 0);
        assert!(mmu.check(&read(1, 0x1000, 4)).is_err());
    }
}
