//! A RISC-V IOPMP model: few, byte-granular, associatively-checked regions.

use crate::{require_valid, GrantError, Granularity, IoProtection, MechanismProperties};
use cheri::{Capability, Perms};
use hetsim::{Access, AccessKind, Denial, DenyReason, ObjectId, TaskId};

/// Configuration for an [`Iopmp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IopmpConfig {
    /// Number of region registers. The associative lookup is expensive, so
    /// real implementations stop at "single-digit or teen numbers of
    /// regions" (§3.2); 16 is the generous default.
    pub regions: usize,
}

impl Default for IopmpConfig {
    fn default() -> IopmpConfig {
        IopmpConfig { regions: 16 }
    }
}

#[derive(Clone, Copy, Debug)]
struct Region {
    task: TaskId,
    base: u64,
    end: u128,
    read: bool,
    write: bool,
}

/// An IOPMP: every memory request is checked in parallel against a small
/// set of `(task, region, policy)` registers.
///
/// Regions are byte-granular, so buffers never leak page slack — but all
/// of a task's regions are reachable through *any* pointer the task uses:
/// protection is per-task ("TA" in Table 3), and the region count is tiny.
#[derive(Clone, Debug)]
pub struct Iopmp {
    cfg: IopmpConfig,
    regions: Vec<Region>,
}

impl Iopmp {
    /// Creates an IOPMP with the given number of region registers.
    #[must_use]
    pub fn new(cfg: IopmpConfig) -> Iopmp {
        Iopmp {
            cfg,
            regions: Vec::new(),
        }
    }

    /// Number of region registers in hardware.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cfg.regions
    }
}

impl Default for Iopmp {
    fn default() -> Iopmp {
        Iopmp::new(IopmpConfig::default())
    }
}

impl IoProtection for Iopmp {
    fn name(&self) -> &'static str {
        "IOPMP"
    }

    fn properties(&self) -> MechanismProperties {
        MechanismProperties::iopmp()
    }

    fn granularity(&self) -> Granularity {
        Granularity::Task
    }

    fn grant(&mut self, task: TaskId, _: ObjectId, cap: &Capability) -> Result<(), GrantError> {
        require_valid(cap)?;
        if self.regions.len() >= self.cfg.regions {
            return Err(GrantError::TableFull);
        }
        self.regions.push(Region {
            task,
            base: cap.base(),
            end: cap.top(),
            read: cap.perms().contains(Perms::LOAD),
            write: cap.perms().contains(Perms::STORE),
        });
        Ok(())
    }

    fn revoke_task(&mut self, task: TaskId) {
        self.regions.retain(|r| r.task != task);
    }

    fn check(&mut self, access: &Access) -> Result<(), Denial> {
        let end = access.addr as u128 + access.len as u128;
        let mut saw_region = false;
        for r in &self.regions {
            if r.task != access.task {
                continue;
            }
            saw_region = true;
            if access.addr >= r.base && end <= r.end {
                let allowed = match access.kind {
                    AccessKind::Read => r.read,
                    AccessKind::Write => r.write,
                };
                if allowed {
                    return Ok(());
                }
                return Err(Denial {
                    access: *access,
                    reason: DenyReason::MissingPermission,
                });
            }
        }
        Err(Denial {
            access: *access,
            reason: if saw_region {
                DenyReason::OutOfBounds
            } else {
                DenyReason::NoEntry
            },
        })
    }

    fn entries_in_use(&self) -> usize {
        self.regions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::MasterId;

    fn rw_cap(base: u64, len: u64) -> Capability {
        Capability::root()
            .set_bounds(base, len)
            .unwrap()
            .and_perms(Perms::RW)
            .unwrap()
    }

    fn read(task: u32, addr: u64, len: u64) -> Access {
        Access::read(MasterId(0), TaskId(task), addr, len)
    }

    #[test]
    fn grants_enforce_task_and_bounds() {
        let mut pmp = Iopmp::default();
        pmp.grant(TaskId(1), ObjectId(0), &rw_cap(0x1000, 0x100))
            .unwrap();
        assert!(pmp.check(&read(1, 0x1000, 4)).is_ok());
        assert!(pmp.check(&read(1, 0x10ff, 1)).is_ok());
        // Byte past the end is refused — byte-granular, unlike an IOMMU.
        assert!(pmp.check(&read(1, 0x1100, 1)).is_err());
        // Another task cannot use this region.
        assert!(pmp.check(&read(2, 0x1000, 4)).is_err());
    }

    #[test]
    fn intra_task_regions_are_interchangeable() {
        // The IOPMP weakness in Table 3 group (a): a pointer intended for
        // buffer A happily reads buffer B of the same task.
        let mut pmp = Iopmp::default();
        pmp.grant(TaskId(1), ObjectId(0), &rw_cap(0x1000, 0x100))
            .unwrap();
        pmp.grant(TaskId(1), ObjectId(1), &rw_cap(0x3000, 0x100))
            .unwrap();
        let cross = read(1, 0x3000, 4).with_object(ObjectId(0));
        assert!(pmp.check(&cross).is_ok(), "IOPMP cannot see object intent");
    }

    #[test]
    fn permission_bits_are_honoured() {
        let mut pmp = Iopmp::default();
        let ro = Capability::root()
            .set_bounds(0x1000, 0x100)
            .unwrap()
            .and_perms(Perms::LOAD)
            .unwrap();
        pmp.grant(TaskId(1), ObjectId(0), &ro).unwrap();
        assert!(pmp.check(&read(1, 0x1000, 4)).is_ok());
        let w = Access::write(MasterId(0), TaskId(1), 0x1000, 4);
        assert_eq!(
            pmp.check(&w).unwrap_err().reason,
            DenyReason::MissingPermission
        );
    }

    #[test]
    fn table_fills_up_fast() {
        let mut pmp = Iopmp::new(IopmpConfig { regions: 2 });
        pmp.grant(TaskId(1), ObjectId(0), &rw_cap(0, 64)).unwrap();
        pmp.grant(TaskId(1), ObjectId(1), &rw_cap(64, 64)).unwrap();
        assert_eq!(
            pmp.grant(TaskId(1), ObjectId(2), &rw_cap(128, 64)),
            Err(GrantError::TableFull)
        );
        assert_eq!(pmp.entries_in_use(), 2);
    }

    #[test]
    fn revoke_frees_entries() {
        let mut pmp = Iopmp::default();
        pmp.grant(TaskId(1), ObjectId(0), &rw_cap(0, 64)).unwrap();
        pmp.grant(TaskId(2), ObjectId(0), &rw_cap(64, 64)).unwrap();
        pmp.revoke_task(TaskId(1));
        assert_eq!(pmp.entries_in_use(), 1);
        assert!(pmp.check(&read(1, 0, 4)).is_err());
        assert!(pmp.check(&read(2, 64, 4)).is_ok());
    }
}
