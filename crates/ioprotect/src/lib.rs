//! # ioprotect — I/O memory-protection mechanisms
//!
//! The protection baselines the paper compares against (Tables 1 and 3,
//! Figure 12), all behind one interface: [`IoProtection`].
//!
//! * [`NoProtection`] — the vanilla embedded system: every address
//!   reachable by every device.
//! * [`Iopmp`] — a RISC-V IOPMP: a handful of associatively-checked
//!   regions (byte-granular, but expensive, so few).
//! * [`Iommu`] — page-table-based translation/protection at 4 kB
//!   granularity with an IOTLB.
//! * [`Snpu`] — an sNPU-style accelerator-specific checker: per-task
//!   bounds tailored to one architecture, with its own (non-CHERI)
//!   capability mapping.
//!
//! The CapChecker itself (crate `capchecker`) implements the same trait so
//! that the security harness can run identical attacks against every
//! mechanism.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod iommu;
mod iopmp;
mod none;
mod properties;
mod snpu;

pub use iommu::{Iommu, IommuConfig};
pub use iopmp::{Iopmp, IopmpConfig};
pub use none::NoProtection;
pub use properties::{MechanismProperties, Scalability, Translation};
pub use snpu::Snpu;

use cheri::Capability;
use hetsim::{Access, Denial, ObjectId, TaskId};
use std::error::Error;
use std::fmt;

/// How finely a mechanism separates memory (coarsest to finest).
///
/// This is the `PG`/`TA`/`OB` axis of Table 3: page-level (IOMMU),
/// task-level (IOPMP, sNPU, CapChecker-Coarse), object-level
/// (CapChecker-Fine).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Granularity {
    /// No spatial enforcement at all.
    Unprotected,
    /// Memory pages (4 kB here).
    Page,
    /// A task's whole footprint.
    Task,
    /// Individual objects (pointer-level).
    Object,
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Granularity::Unprotected => "none",
            Granularity::Page => "PG",
            Granularity::Task => "TA",
            Granularity::Object => "OB",
        })
    }
}

/// Failure to install an authorization into a mechanism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GrantError {
    /// No free entry/region; the caller must evict or stall (§5.3 ③).
    TableFull,
    /// The capability presented was invalid (untagged or sealed).
    InvalidCapability,
    /// The mechanism cannot express this authorization.
    Unsupported,
}

impl fmt::Display for GrantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrantError::TableFull => write!(f, "no free protection entry"),
            GrantError::InvalidCapability => write!(f, "capability is invalid"),
            GrantError::Unsupported => write!(f, "authorization not expressible"),
        }
    }
}

impl Error for GrantError {}

/// A hardware mechanism that vets device memory accesses.
///
/// The grant/revoke half is driven by trusted software (the driver); the
/// check half sits on the data path and sees every [`Access`].
pub trait IoProtection {
    /// Short mechanism name (Table 1/3 column header).
    fn name(&self) -> &'static str;

    /// The qualitative property row of Table 1.
    fn properties(&self) -> MechanismProperties;

    /// The finest separation this instance provides.
    fn granularity(&self) -> Granularity;

    /// Authorizes `task` to use `cap`'s region for object `object`.
    ///
    /// Mechanisms that cannot hold capabilities approximate: the IOMMU
    /// maps the *pages* the region touches, the IOPMP installs a region
    /// register, sNPU widens the task's bounds. That approximation is
    /// exactly the `b ⊆ c` slack of the paper's formalization (§4.2).
    ///
    /// # Errors
    ///
    /// See [`GrantError`].
    fn grant(&mut self, task: TaskId, object: ObjectId, cap: &Capability)
        -> Result<(), GrantError>;

    /// Removes every authorization held by `task` (task teardown).
    fn revoke_task(&mut self, task: TaskId);

    /// Vets one access on the data path.
    ///
    /// # Errors
    ///
    /// A [`Denial`] naming the failed check; the system treats it as the
    /// mechanism's exception.
    fn check(&mut self, access: &Access) -> Result<(), Denial>;

    /// Hardware entries currently occupied (Figure 12's y-axis).
    fn entries_in_use(&self) -> usize;

    /// Maps a granted request's address to the physical address the memory
    /// controller should see. Identity for pure protection mechanisms; the
    /// CapChecker's Coarse mode strips its object-ID bits here, and an
    /// IOMMU would translate.
    fn translate(&self, addr: u64) -> u64 {
        addr
    }

    /// Vets one access and, when granted, returns the physical address
    /// the memory controller should see — [`IoProtection::check`]
    /// followed by [`IoProtection::translate`] as a single data-path
    /// call.
    ///
    /// This is the DMA beat hot path: engines issue one `vet` per beat
    /// instead of two virtual calls. The default is definitionally
    /// check-then-translate, so mechanisms only override it to fuse the
    /// two (the CapChecker resolves the object once and reuses it for
    /// both the verdict and the Coarse address strip); any override must
    /// preserve the exact verdicts, counters, and exception latching of
    /// the two-call sequence.
    ///
    /// # Errors
    ///
    /// The same [`Denial`] that [`IoProtection::check`] would return.
    fn vet(&mut self, access: &Access) -> Result<u64, Denial> {
        self.check(access)?;
        Ok(self.translate(access.addr))
    }
}

pub(crate) fn require_valid(cap: &Capability) -> Result<(), GrantError> {
    if !cap.is_valid() || cap.is_sealed() {
        return Err(GrantError::InvalidCapability);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_orders_coarse_to_fine() {
        assert!(Granularity::Unprotected < Granularity::Page);
        assert!(Granularity::Page < Granularity::Task);
        assert!(Granularity::Task < Granularity::Object);
    }

    #[test]
    fn grant_error_messages() {
        assert!(GrantError::TableFull.to_string().contains("entry"));
        assert!(GrantError::InvalidCapability
            .to_string()
            .contains("invalid"));
    }

    #[test]
    fn sealed_or_untagged_caps_rejected_by_helper() {
        let sealed = Capability::root().seal(77).unwrap();
        assert_eq!(require_valid(&sealed), Err(GrantError::InvalidCapability));
        let untagged = Capability::root().clear_tag();
        assert_eq!(require_valid(&untagged), Err(GrantError::InvalidCapability));
        assert_eq!(require_valid(&Capability::root()), Ok(()));
    }
}
