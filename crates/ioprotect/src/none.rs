//! The absence of protection: the baseline embedded system.

use crate::{GrantError, Granularity, IoProtection, MechanismProperties};
use cheri::Capability;
use hetsim::{Access, Denial, ObjectId, TaskId};

/// No protection at all: every device reaches all of physical memory,
/// including the OS — "the whole memory … is reachable by the attacker"
/// (§2). Grants are accepted and ignored.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoProtection;

impl NoProtection {
    /// Creates the (stateless) mechanism.
    #[must_use]
    pub fn new() -> NoProtection {
        NoProtection
    }
}

impl IoProtection for NoProtection {
    fn name(&self) -> &'static str {
        "No method"
    }

    fn properties(&self) -> MechanismProperties {
        MechanismProperties::none()
    }

    fn granularity(&self) -> Granularity {
        Granularity::Unprotected
    }

    fn grant(&mut self, _: TaskId, _: ObjectId, _: &Capability) -> Result<(), GrantError> {
        Ok(())
    }

    fn revoke_task(&mut self, _: TaskId) {}

    fn check(&mut self, _: &Access) -> Result<(), Denial> {
        Ok(())
    }

    fn entries_in_use(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::MasterId;

    #[test]
    fn everything_passes() {
        let mut p = NoProtection::new();
        let a = Access::write(MasterId(0), TaskId(1), u64::MAX, 1);
        assert!(p.check(&a).is_ok());
        assert_eq!(p.entries_in_use(), 0);
        assert_eq!(p.granularity(), Granularity::Unprotected);
    }
}
