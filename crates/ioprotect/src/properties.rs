//! Qualitative mechanism properties — the rows of Table 1.

use std::fmt;

/// Whether a mechanism's entry count scales with realistic workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scalability {
    /// Entry count or area makes large workloads impractical.
    No,
    /// Scales, with caveats (the paper marks CHERI "semi": entries scale
    /// with live *pointers*, not bytes, but the table is finite).
    Semi,
    /// Scales freely.
    Yes,
}

impl fmt::Display for Scalability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scalability::No => "no",
            Scalability::Semi => "semi",
            Scalability::Yes => "yes",
        })
    }
}

/// Whether a mechanism provides address translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Translation {
    /// Pure protection, identity addressing.
    No,
    /// Translation is inherent (IOMMU).
    Yes,
    /// Translation can be layered independently (CHERI deconflates
    /// protection from translation).
    Optional,
}

impl fmt::Display for Translation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Translation::No => "no",
            Translation::Yes => "yes",
            Translation::Optional => "optional",
        })
    }
}

/// One column of Table 1: the qualitative comparison of device-side
/// protection methods.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MechanismProperties {
    /// Mechanism name.
    pub name: &'static str,
    /// Does it enforce spatial memory safety at all?
    pub spatial_enforcement: bool,
    /// Enforcement granularity in bytes (`None` when not enforcing).
    pub granularity_bytes: Option<u64>,
    /// Does it share the CPU's object representation (same `c` mapping)?
    pub common_object_representation: bool,
    /// Are its authorizations unforgeable by the protected devices?
    pub unforgeable: bool,
    /// Entry/area scalability.
    pub scalability: Scalability,
    /// Address translation support.
    pub address_translation: Translation,
    /// Cheap enough for microcontroller-class systems?
    pub microcontroller_suitable: bool,
    /// Appropriate for application processors?
    pub app_processor_suitable: bool,
}

impl MechanismProperties {
    /// The "No method" column.
    #[must_use]
    pub fn none() -> MechanismProperties {
        MechanismProperties {
            name: "No method",
            spatial_enforcement: false,
            granularity_bytes: None,
            common_object_representation: false,
            unforgeable: false,
            scalability: Scalability::Yes,
            address_translation: Translation::No,
            microcontroller_suitable: true,
            app_processor_suitable: true,
        }
    }

    /// The IOPMP column.
    #[must_use]
    pub fn iopmp() -> MechanismProperties {
        MechanismProperties {
            name: "IOPMP",
            spatial_enforcement: true,
            granularity_bytes: Some(1),
            common_object_representation: false,
            unforgeable: false,
            scalability: Scalability::No,
            address_translation: Translation::No,
            microcontroller_suitable: true,
            app_processor_suitable: false,
        }
    }

    /// The IOMMU column.
    #[must_use]
    pub fn iommu() -> MechanismProperties {
        MechanismProperties {
            name: "IOMMU",
            spatial_enforcement: true,
            granularity_bytes: Some(4096),
            common_object_representation: false,
            unforgeable: false,
            scalability: Scalability::Yes,
            address_translation: Translation::Yes,
            microcontroller_suitable: false,
            app_processor_suitable: true,
        }
    }

    /// The CHERI (CapChecker) column.
    #[must_use]
    pub fn cheri() -> MechanismProperties {
        MechanismProperties {
            name: "CHERI",
            spatial_enforcement: true,
            granularity_bytes: Some(1),
            common_object_representation: true,
            unforgeable: true,
            scalability: Scalability::Semi,
            address_translation: Translation::Optional,
            microcontroller_suitable: true,
            app_processor_suitable: true,
        }
    }

    /// The four columns of Table 1, in the paper's order.
    #[must_use]
    pub fn table1() -> [MechanismProperties; 4] {
        [
            MechanismProperties::none(),
            MechanismProperties::iopmp(),
            MechanismProperties::iommu(),
            MechanismProperties::cheri(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let [none, iopmp, iommu, cheri] = MechanismProperties::table1();

        // Spatial enforcement row: ✗ ✓ ✓ ✓
        assert!(!none.spatial_enforcement);
        assert!(
            iopmp.spatial_enforcement && iommu.spatial_enforcement && cheri.spatial_enforcement
        );

        // Granularity row: – 1 4096 1
        assert_eq!(none.granularity_bytes, None);
        assert_eq!(iopmp.granularity_bytes, Some(1));
        assert_eq!(iommu.granularity_bytes, Some(4096));
        assert_eq!(cheri.granularity_bytes, Some(1));

        // Common object representation and unforgeability: only CHERI.
        for m in [none, iopmp, iommu] {
            assert!(!m.common_object_representation);
            assert!(!m.unforgeable);
        }
        assert!(cheri.common_object_representation && cheri.unforgeable);

        // Scalability: ✓ ✗ ✓ semi
        assert_eq!(none.scalability, Scalability::Yes);
        assert_eq!(iopmp.scalability, Scalability::No);
        assert_eq!(iommu.scalability, Scalability::Yes);
        assert_eq!(cheri.scalability, Scalability::Semi);

        // Translation: ✗ ✗ ✓ optional
        assert_eq!(iommu.address_translation, Translation::Yes);
        assert_eq!(cheri.address_translation, Translation::Optional);

        // Suitability rows.
        assert!(none.microcontroller_suitable && iopmp.microcontroller_suitable);
        assert!(!iommu.microcontroller_suitable && cheri.microcontroller_suitable);
        assert!(!iopmp.app_processor_suitable);
        assert!(
            none.app_processor_suitable
                && iommu.app_processor_suitable
                && cheri.app_processor_suitable
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Scalability::Semi.to_string(), "semi");
        assert_eq!(Translation::Optional.to_string(), "optional");
    }
}
