//! An sNPU-style accelerator-specific protection model.
//!
//! sNPU (Feng et al., ISCA'24) integrates bounds checking *inside* one NPU
//! architecture: each task gets a guarded window over the memory it may
//! touch, using a capability mapping private to the accelerator. That is
//! effective within the NPU, but it is a *different* capability system
//! from the CPU's — the protection-heterogeneity problem of §4.2
//! (`c_p ≠ c_a`). The model here captures both the strength (task-level
//! windows) and the weakness (no common object representation, forgeable
//! from the CPU's point of view).

use crate::{
    require_valid, GrantError, Granularity, IoProtection, MechanismProperties, Scalability,
    Translation,
};
use cheri::{Capability, Perms};
use hetsim::{Access, AccessKind, Denial, DenyReason, ObjectId, TaskId};
use std::collections::HashMap;

#[derive(Clone, Copy, Debug)]
struct Window {
    base: u64,
    end: u128,
    read: bool,
    write: bool,
}

/// Task-granularity protection tailored to a single accelerator
/// architecture.
///
/// Each task owns one contiguous window that grows to cover every buffer
/// granted to it (the scratchpad-window idiom). Accesses anywhere inside
/// the window pass — including between the task's own buffers and through
/// any allocation gaps the window spans, which is why Table 3 scores it
/// "TA".
#[derive(Clone, Debug, Default)]
pub struct Snpu {
    windows: HashMap<TaskId, Window>,
}

impl Snpu {
    /// Creates the checker with no task windows.
    #[must_use]
    pub fn new() -> Snpu {
        Snpu::default()
    }
}

impl IoProtection for Snpu {
    fn name(&self) -> &'static str {
        "sNPU"
    }

    fn properties(&self) -> MechanismProperties {
        MechanismProperties {
            name: "sNPU",
            spatial_enforcement: true,
            granularity_bytes: Some(1),
            common_object_representation: false,
            unforgeable: false,
            scalability: Scalability::Semi,
            address_translation: Translation::No,
            microcontroller_suitable: true,
            app_processor_suitable: false,
        }
    }

    fn granularity(&self) -> Granularity {
        Granularity::Task
    }

    fn grant(&mut self, task: TaskId, _: ObjectId, cap: &Capability) -> Result<(), GrantError> {
        require_valid(cap)?;
        let read = cap.perms().contains(Perms::LOAD);
        let write = cap.perms().contains(Perms::STORE);
        let w = self.windows.entry(task).or_insert(Window {
            base: cap.base(),
            end: cap.top(),
            read,
            write,
        });
        w.base = w.base.min(cap.base());
        w.end = w.end.max(cap.top());
        w.read |= read;
        w.write |= write;
        Ok(())
    }

    fn revoke_task(&mut self, task: TaskId) {
        self.windows.remove(&task);
    }

    fn check(&mut self, access: &Access) -> Result<(), Denial> {
        let Some(w) = self.windows.get(&access.task) else {
            return Err(Denial {
                access: *access,
                reason: DenyReason::NoEntry,
            });
        };
        let end = access.addr as u128 + access.len as u128;
        if access.addr < w.base || end > w.end {
            return Err(Denial {
                access: *access,
                reason: DenyReason::OutOfBounds,
            });
        }
        let allowed = match access.kind {
            AccessKind::Read => w.read,
            AccessKind::Write => w.write,
        };
        if !allowed {
            return Err(Denial {
                access: *access,
                reason: DenyReason::MissingPermission,
            });
        }
        Ok(())
    }

    fn entries_in_use(&self) -> usize {
        self.windows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::MasterId;

    fn rw_cap(base: u64, len: u64) -> Capability {
        Capability::root()
            .set_bounds(base, len)
            .unwrap()
            .and_perms(Perms::RW)
            .unwrap()
    }

    fn read(task: u32, addr: u64, len: u64) -> Access {
        Access::read(MasterId(0), TaskId(task), addr, len)
    }

    #[test]
    fn window_separates_tasks() {
        let mut s = Snpu::new();
        s.grant(TaskId(1), ObjectId(0), &rw_cap(0x1000, 0x100))
            .unwrap();
        s.grant(TaskId(2), ObjectId(0), &rw_cap(0x8000, 0x100))
            .unwrap();
        assert!(s.check(&read(1, 0x1000, 4)).is_ok());
        assert!(s.check(&read(1, 0x8000, 4)).is_err());
        assert!(s.check(&read(2, 0x8000, 4)).is_ok());
    }

    #[test]
    fn window_spans_gaps_between_buffers() {
        // The task-granularity weakness: two buffers widen one window, and
        // the unrelated gap between them becomes reachable.
        let mut s = Snpu::new();
        s.grant(TaskId(1), ObjectId(0), &rw_cap(0x1000, 0x100))
            .unwrap();
        s.grant(TaskId(1), ObjectId(1), &rw_cap(0x3000, 0x100))
            .unwrap();
        assert!(
            s.check(&read(1, 0x2000, 4)).is_ok(),
            "gap inside window is exposed"
        );
        assert_eq!(s.entries_in_use(), 1);
    }

    #[test]
    fn no_window_means_no_access() {
        let mut s = Snpu::new();
        assert_eq!(
            s.check(&read(5, 0, 4)).unwrap_err().reason,
            DenyReason::NoEntry
        );
    }

    #[test]
    fn revoke_closes_the_window() {
        let mut s = Snpu::new();
        s.grant(TaskId(1), ObjectId(0), &rw_cap(0x1000, 0x100))
            .unwrap();
        s.revoke_task(TaskId(1));
        assert!(s.check(&read(1, 0x1000, 4)).is_err());
        assert_eq!(s.entries_in_use(), 0);
    }
}
