//! Property-based tests over the baseline mechanisms: whatever the
//! mechanism, a grant must make exactly the promised region reachable —
//! no less (completeness) and, for the task in question, no *less
//! coarsely* than documented (soundness at the mechanism's granularity).

use cheri::{Capability, Perms};
use hetsim::{Access, MasterId, ObjectId, TaskId};
use ioprotect::{IoProtection, Iommu, IommuConfig, Iopmp, IopmpConfig, NoProtection, Snpu};
use proptest::prelude::*;

fn rw_cap(base: u64, len: u64) -> Capability {
    Capability::root()
        .set_bounds(base, len)
        .unwrap()
        .and_perms(Perms::RW)
        .unwrap()
}

fn arb_region() -> impl Strategy<Value = (u64, u64)> {
    // 16-aligned regions with representable sizes, as the driver produces.
    (0u64..(1 << 20), 1u64..8192).prop_map(|(b, l)| (b & !0xf, l.next_multiple_of(16)))
}

fn mechanisms() -> Vec<Box<dyn IoProtection>> {
    vec![
        Box::new(NoProtection::new()),
        Box::new(Iopmp::new(IopmpConfig { regions: 64 })),
        Box::new(Iommu::new(IommuConfig::default())),
        Box::new(Snpu::new()),
    ]
}

proptest! {
    /// Completeness: every byte of a granted region is accessible by the
    /// granted task under every mechanism.
    #[test]
    fn granted_regions_are_fully_reachable((base, len) in arb_region(), probe in 0u64..8192) {
        let cap = rw_cap(base, len);
        for mut mech in mechanisms() {
            mech.grant(TaskId(1), ObjectId(0), &cap).unwrap();
            let offset = probe % len;
            let access = Access::read(MasterId(0), TaskId(1), base + offset, 1);
            prop_assert!(
                mech.check(&access).is_ok(),
                "{}: byte {offset} of a granted region refused",
                mech.name()
            );
        }
    }

    /// Cross-task soundness: a *different* task can never use the grant
    /// (except on the unprotected system).
    #[test]
    fn foreign_tasks_are_always_refused((base, len) in arb_region(), probe in 0u64..8192) {
        let cap = rw_cap(base, len);
        for mut mech in mechanisms() {
            if mech.granularity() == ioprotect::Granularity::Unprotected {
                continue;
            }
            mech.grant(TaskId(1), ObjectId(0), &cap).unwrap();
            let access = Access::read(MasterId(0), TaskId(2), base + probe % len, 1);
            prop_assert!(mech.check(&access).is_err(), "{}: foreign task passed", mech.name());
        }
    }

    /// Revocation is total: after revoke_task, nothing of that task's
    /// grants remains reachable.
    #[test]
    fn revocation_is_total(regions in prop::collection::vec(arb_region(), 1..8)) {
        for mut mech in mechanisms() {
            if mech.granularity() == ioprotect::Granularity::Unprotected {
                continue;
            }
            for (i, (base, len)) in regions.iter().enumerate() {
                mech.grant(TaskId(1), ObjectId(i as u16), &rw_cap(*base, *len)).unwrap();
            }
            mech.revoke_task(TaskId(1));
            prop_assert_eq!(mech.entries_in_use(), 0, "{}", mech.name());
            for (base, len) in &regions {
                let access = Access::read(MasterId(0), TaskId(1), *base, (*len).min(8));
                prop_assert!(mech.check(&access).is_err(), "{}: revoked grant lived on", mech.name());
            }
        }
    }

    /// IOMMU page math: the reachable region is exactly the page-rounded
    /// cover of the buffer.
    #[test]
    fn iommu_reaches_exactly_the_page_cover((base, len) in arb_region(), probe in 0u64..(1 << 21)) {
        let mut mmu = Iommu::default();
        mmu.grant(TaskId(1), ObjectId(0), &rw_cap(base, len)).unwrap();
        let page = 4096u64;
        let lo = base / page * page;
        let hi = (base + len).div_ceil(page) * page;
        let inside = probe >= lo && probe < hi;
        let ok = mmu.check(&Access::read(MasterId(0), TaskId(1), probe, 1)).is_ok();
        prop_assert_eq!(ok, inside, "probe {:#x} vs cover [{:#x},{:#x})", probe, lo, hi);
    }

    /// IOPMP is byte-exact: one byte outside a region is refused even
    /// when it sits in the same page.
    #[test]
    fn iopmp_is_byte_exact((base, len) in arb_region()) {
        let mut pmp = Iopmp::default();
        pmp.grant(TaskId(1), ObjectId(0), &rw_cap(base, len)).unwrap();
        let last_ok = Access::read(MasterId(0), TaskId(1), base + len - 1, 1);
        let first_bad = Access::read(MasterId(0), TaskId(1), base + len, 1);
        prop_assert!(pmp.check(&last_ok).is_ok());
        prop_assert!(pmp.check(&first_bad).is_err());
    }
}
