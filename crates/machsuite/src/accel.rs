//! Per-benchmark HLS timing profiles.
//!
//! These are the structural parameters the paper's Vitis HLS flow fixes
//! when it builds each accelerator ("the hardware optimizations of
//! accelerators are determined by the automated HLS tool", §6): datapath
//! lanes, retired operations per lane-cycle, and the memory-level
//! parallelism each lane sustains — plus the scalar CPU's cost per work
//! unit, which is dominated by floating-point strength for the FP
//! benchmarks (Flute-class cores have no wide FPU).
//!
//! The values are calibrated to reproduce Figure 7's *bands*: backprop and
//! viterbi in the thousands, most benchmarks solidly above 1×, and the
//! four memory-bound kernels (md_knn, stencil2d, bfs_bulk, bfs_queue)
//! below 1× — not the VCU118's absolute cycle counts.

use crate::Benchmark;

/// Timing profile of one benchmark on the CPU and on its HLS accelerator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelProfile {
    /// CPU cycles per kernel work unit (FP-heavy kernels cost more on a
    /// scalar soft-core).
    pub cpu_cycles_per_unit: f64,
    /// Parallel datapath lanes in the accelerator.
    pub lanes: u32,
    /// Work units retired per lane per cycle once the pipeline fills.
    pub compute_per_cycle: f64,
    /// Outstanding memory requests per lane.
    pub outstanding: u32,
}

const fn profile_of(
    cpu_cycles_per_unit: f64,
    lanes: u32,
    compute_per_cycle: f64,
    outstanding: u32,
) -> KernelProfile {
    KernelProfile {
        cpu_cycles_per_unit,
        lanes,
        compute_per_cycle,
        outstanding,
    }
}

/// The profile for `bench`.
#[must_use]
pub fn profile(bench: Benchmark) -> KernelProfile {
    match bench {
        // Crypto: bit-level parallelism pipelines superbly.
        Benchmark::Aes => profile_of(1.5, 4, 16.0, 4),
        // FP training with sigmoids: very expensive per unit on the CPU,
        // very wide on the accelerator.
        Benchmark::Backprop => profile_of(20.0, 32, 16.0, 8),
        // Graph traversal: data-dependent loads, no pipelining to speak of.
        Benchmark::BfsBulk => profile_of(1.2, 1, 2.0, 4),
        Benchmark::BfsQueue => profile_of(1.2, 1, 2.0, 4),
        // FP butterflies, streamed in place.
        Benchmark::FftStrided => profile_of(6.0, 8, 4.0, 8),
        Benchmark::FftTranspose => profile_of(6.0, 8, 4.0, 8),
        // Single-precision MACs with a hardware FMA: cheap per unit.
        Benchmark::GemmBlocked => profile_of(1.0, 4, 8.0, 4),
        Benchmark::GemmNcubed => profile_of(1.0, 4, 8.0, 4),
        // Byte matching.
        Benchmark::Kmp => profile_of(1.2, 4, 4.0, 16),
        // FP pair interactions from BRAM.
        Benchmark::MdGrid => profile_of(8.0, 16, 8.0, 8),
        // Neighbor-list gathers: the memory-bound, small-latency outlier.
        Benchmark::MdKnn => profile_of(1.0, 1, 4.0, 2),
        // Integer DP.
        Benchmark::Nw => profile_of(1.0, 4, 4.0, 8),
        // Comparison-bound.
        Benchmark::SortMerge => profile_of(1.5, 4, 2.0, 16),
        Benchmark::SortRadix => profile_of(1.5, 4, 2.0, 8),
        // Sparse gathers.
        Benchmark::SpmvCrs => profile_of(4.0, 4, 2.0, 4),
        Benchmark::SpmvEllpack => profile_of(4.0, 4, 2.0, 4),
        // Tap streaming beats the FPU only when the cache helps: CPU wins.
        Benchmark::Stencil2d => profile_of(1.5, 1, 4.0, 2),
        Benchmark::Stencil3d => profile_of(4.0, 8, 4.0, 8),
        // FP trellis from BRAM.
        Benchmark::Viterbi => profile_of(25.0, 32, 16.0, 8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_has_a_sane_profile() {
        for b in Benchmark::ALL {
            let p = profile(b);
            assert!(p.cpu_cycles_per_unit >= 1.0, "{b}");
            assert!(p.lanes >= 1 && p.lanes <= 64, "{b}");
            assert!(p.compute_per_cycle >= 1.0, "{b}");
            assert!(p.outstanding >= 1, "{b}");
        }
    }

    #[test]
    fn memory_bound_benchmarks_have_narrow_accelerators() {
        for b in [
            Benchmark::MdKnn,
            Benchmark::Stencil2d,
            Benchmark::BfsBulk,
            Benchmark::BfsQueue,
        ] {
            let p = profile(b);
            assert!(p.lanes <= 2, "{b} should not be wide");
        }
    }

    #[test]
    fn flagship_speedup_benchmarks_are_wide_and_fp_heavy() {
        for b in [Benchmark::Backprop, Benchmark::Viterbi] {
            let p = profile(b);
            assert!(p.cpu_cycles_per_unit >= 20.0, "{b}");
            assert!(p.lanes as f64 * p.compute_per_cycle >= 256.0, "{b}");
        }
    }
}
