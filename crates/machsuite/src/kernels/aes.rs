//! `aes` — AES-128 counter-mode-style chained encryption.
//!
//! One 128-byte buffer: a 16-byte key followed by seven 16-byte blocks.
//! The kernel expands the key schedule into registers, then repeatedly
//! re-encrypts the blocks (a chained keystream generator), touching memory
//! only to load the initial state and store the final one — the classic
//! compute-bound crypto accelerator.

use super::{get_u64, set_u64};
use hetsim::{Engine, ExecFault};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const BLOCKS: usize = 7;
/// Chained encryption passes (the keystream length).
const PASSES: usize = 256;
/// Work units per AES round: 16 S-box lookups, MixColumns, AddRoundKey.
const ROUND_UNITS: u64 = 60;

#[rustfmt::skip]
const SBOX: [u8; 256] = [
    0x63,0x7c,0x77,0x7b,0xf2,0x6b,0x6f,0xc5,0x30,0x01,0x67,0x2b,0xfe,0xd7,0xab,0x76,
    0xca,0x82,0xc9,0x7d,0xfa,0x59,0x47,0xf0,0xad,0xd4,0xa2,0xaf,0x9c,0xa4,0x72,0xc0,
    0xb7,0xfd,0x93,0x26,0x36,0x3f,0xf7,0xcc,0x34,0xa5,0xe5,0xf1,0x71,0xd8,0x31,0x15,
    0x04,0xc7,0x23,0xc3,0x18,0x96,0x05,0x9a,0x07,0x12,0x80,0xe2,0xeb,0x27,0xb2,0x75,
    0x09,0x83,0x2c,0x1a,0x1b,0x6e,0x5a,0xa0,0x52,0x3b,0xd6,0xb3,0x29,0xe3,0x2f,0x84,
    0x53,0xd1,0x00,0xed,0x20,0xfc,0xb1,0x5b,0x6a,0xcb,0xbe,0x39,0x4a,0x4c,0x58,0xcf,
    0xd0,0xef,0xaa,0xfb,0x43,0x4d,0x33,0x85,0x45,0xf9,0x02,0x7f,0x50,0x3c,0x9f,0xa8,
    0x51,0xa3,0x40,0x8f,0x92,0x9d,0x38,0xf5,0xbc,0xb6,0xda,0x21,0x10,0xff,0xf3,0xd2,
    0xcd,0x0c,0x13,0xec,0x5f,0x97,0x44,0x17,0xc4,0xa7,0x7e,0x3d,0x64,0x5d,0x19,0x73,
    0x60,0x81,0x4f,0xdc,0x22,0x2a,0x90,0x88,0x46,0xee,0xb8,0x14,0xde,0x5e,0x0b,0xdb,
    0xe0,0x32,0x3a,0x0a,0x49,0x06,0x24,0x5c,0xc2,0xd3,0xac,0x62,0x91,0x95,0xe4,0x79,
    0xe7,0xc8,0x37,0x6d,0x8d,0xd5,0x4e,0xa9,0x6c,0x56,0xf4,0xea,0x65,0x7a,0xae,0x08,
    0xba,0x78,0x25,0x2e,0x1c,0xa6,0xb4,0xc6,0xe8,0xdd,0x74,0x1f,0x4b,0xbd,0x8b,0x8a,
    0x70,0x3e,0xb5,0x66,0x48,0x03,0xf6,0x0e,0x61,0x35,0x57,0xb9,0x86,0xc1,0x1d,0x9e,
    0xe1,0xf8,0x98,0x11,0x69,0xd9,0x8e,0x94,0x9b,0x1e,0x87,0xe9,0xce,0x55,0x28,0xdf,
    0x8c,0xa1,0x89,0x0d,0xbf,0xe6,0x42,0x68,0x41,0x99,0x2d,0x0f,0xb0,0x54,0xbb,0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

fn xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1b } else { 0 })
}

fn expand_key(key: &[u8; 16]) -> [[u8; 16]; 11] {
    let mut rk = [[0u8; 16]; 11];
    rk[0] = *key;
    for r in 1..11 {
        let prev = rk[r - 1];
        let mut t = [prev[13], prev[14], prev[15], prev[12]];
        for b in &mut t {
            *b = SBOX[*b as usize];
        }
        t[0] ^= RCON[r - 1];
        for c in 0..4 {
            for row in 0..4 {
                let w = if c == 0 {
                    t[row]
                } else {
                    rk[r][(c - 1) * 4 + row]
                };
                rk[r][c * 4 + row] = prev[c * 4 + row] ^ w;
            }
        }
    }
    rk
}

fn encrypt_block(block: &mut [u8; 16], rk: &[[u8; 16]; 11]) {
    for (i, b) in block.iter_mut().enumerate() {
        *b ^= rk[0][i];
    }
    for round in 1..11 {
        // SubBytes.
        for b in block.iter_mut() {
            *b = SBOX[*b as usize];
        }
        // ShiftRows.
        let s = *block;
        for c in 0..4 {
            for r in 0..4 {
                block[c * 4 + r] = s[((c + r) % 4) * 4 + r];
            }
        }
        // MixColumns (skipped in the last round).
        if round < 10 {
            let s = *block;
            for c in 0..4 {
                let col = &s[c * 4..c * 4 + 4];
                let all = col[0] ^ col[1] ^ col[2] ^ col[3];
                for r in 0..4 {
                    block[c * 4 + r] = col[r] ^ all ^ xtime(col[r] ^ col[(r + 1) % 4]);
                }
            }
        }
        // AddRoundKey.
        for (i, b) in block.iter_mut().enumerate() {
            *b ^= rk[round][i];
        }
    }
}

fn run_passes(data: &mut [u8; 128]) {
    let key: [u8; 16] = data[..16].try_into().expect("key slice");
    let rk = expand_key(&key);
    let mut blocks = [[0u8; 16]; BLOCKS];
    for (i, blk) in blocks.iter_mut().enumerate() {
        blk.copy_from_slice(&data[16 + i * 16..32 + i * 16]);
    }
    for _ in 0..PASSES {
        for blk in &mut blocks {
            encrypt_block(blk, &rk);
        }
    }
    for (i, blk) in blocks.iter().enumerate() {
        data[16 + i * 16..32 + i * 16].copy_from_slice(blk);
    }
}

pub(crate) fn init(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xae5);
    let mut block = vec![0u8; 128];
    rng.fill(block.as_mut_slice());
    vec![block]
}

pub(crate) fn kernel(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    // DMA the whole buffer in (key + blocks), 8 bytes per beat.
    let mut data = [0u8; 128];
    for i in 0..16 {
        let w = eng.load_u64(0, i as u64)?;
        data[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
    }
    eng.compute(200); // key expansion
    eng.compute((PASSES * BLOCKS) as u64 * 10 * ROUND_UNITS);
    run_passes(&mut data);
    // Stream the keystream back out (the key words are unchanged).
    for i in 2..16 {
        eng.store_u64(0, i as u64, get_u64(&data, i))?;
    }
    Ok(())
}

pub(crate) fn reference(bufs: &mut [Vec<u8>]) {
    let mut data = [0u8; 128];
    data.copy_from_slice(&bufs[0]);
    run_passes(&mut data);
    // The kernel stores only the block words back; key bytes stay as-is
    // (they are unchanged by run_passes anyway).
    let mut out = bufs[0].clone();
    for i in 2..16 {
        set_u64(&mut out, i, get_u64(&data, i));
    }
    bufs[0] = out;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_197_vector() {
        // FIPS-197 appendix C.1: AES-128, key 000102…0f, plaintext
        // 00112233445566778899aabbccddeeff.
        let key: [u8; 16] = (0..16u8).collect::<Vec<_>>().try_into().unwrap();
        let mut block: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        encrypt_block(&mut block, &expand_key(&key));
        assert_eq!(
            block,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
    }

    #[test]
    fn chaining_changes_every_block() {
        let mut data = [0u8; 128];
        let before = data;
        run_passes(&mut data);
        assert_ne!(&data[16..], &before[16..]);
        assert_eq!(&data[..16], &before[..16], "key must be untouched");
    }
}
