//! `backprop` — one epoch of SGD on a 4-32-8 MLP.
//!
//! The weights stream into accelerator BRAM once, the whole training set
//! streams through, and the updated weights stream back — so the kernel is
//! overwhelmingly compute-bound, which is why the paper reports a
//! four-digit speedup (the CPU pays dearly for every `exp`).

use super::{get_f32, set_f32};
use hetsim::{Engine, ExecFault};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const IN: usize = 4;
const HID: usize = 32;
const OUT: usize = 8;
const SAMPLES: usize = 652;
/// SGD epochs per task invocation (the training set streams through the
/// accelerator once per epoch).
const EPOCHS: usize = 8;

/// Work units for one sigmoid (polynomial/exp pipeline).
const SIGMOID_UNITS: u64 = 8;

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

struct Net {
    w1: [f32; IN * HID],
    w2: [f32; HID * OUT],
    b1: [f32; HID],
    b2: [f32; OUT],
}

/// One SGD step; shared verbatim by kernel and reference so the results
/// match bit-for-bit.
fn train_sample(net: &mut Net, lr: f32, x: &[f32; IN], y: f32) {
    let mut h = [0f32; HID];
    for (j, hj) in h.iter_mut().enumerate() {
        let mut acc = net.b1[j];
        for (i, xi) in x.iter().enumerate() {
            acc += net.w1[i * HID + j] * xi;
        }
        *hj = sigmoid(acc);
    }
    let mut o = [0f32; OUT];
    for (k, ok) in o.iter_mut().enumerate() {
        let mut acc = net.b2[k];
        for (j, hj) in h.iter().enumerate() {
            acc += net.w2[j * OUT + k] * hj;
        }
        *ok = sigmoid(acc);
    }
    let target = (y as usize) % OUT;
    let mut delta_o = [0f32; OUT];
    for k in 0..OUT {
        let t = if k == target { 1.0 } else { 0.0 };
        delta_o[k] = (o[k] - t) * o[k] * (1.0 - o[k]);
    }
    let mut delta_h = [0f32; HID];
    for j in 0..HID {
        let mut acc = 0.0;
        for k in 0..OUT {
            acc += net.w2[j * OUT + k] * delta_o[k];
        }
        delta_h[j] = acc * h[j] * (1.0 - h[j]);
    }
    for j in 0..HID {
        for k in 0..OUT {
            net.w2[j * OUT + k] -= lr * delta_o[k] * h[j];
        }
        net.b1[j] -= lr * delta_h[j];
    }
    for k in 0..OUT {
        net.b2[k] -= lr * delta_o[k];
    }
    for i in 0..IN {
        for j in 0..HID {
            net.w1[i * HID + j] -= lr * delta_h[j] * x[i];
        }
    }
}

fn sample_units() -> u64 {
    // Forward MACs + sigmoids + backward MACs + updates.
    let fwd = (IN * HID + HID * OUT) as u64 * 2;
    let sig = (HID + OUT) as u64 * SIGMOID_UNITS;
    let bwd = (HID * OUT) as u64 * 2 + (OUT + HID) as u64 * 4;
    let upd = (HID * OUT + IN * HID) as u64 * 3 + (HID + OUT) as u64 * 2;
    fwd + sig + bwd + upd
}

pub(crate) fn init(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xbac);
    let mut f32_buf = |n: usize, lo: f32, hi: f32| {
        let mut v = vec![0u8; n * 4];
        for i in 0..n {
            set_f32(&mut v, i, rng.gen_range(lo..hi));
        }
        v
    };
    let mut hyper = vec![0u8; 12];
    set_f32(&mut hyper, 0, 0.05); // learning rate
    let w1 = f32_buf(IN * HID, -0.5, 0.5);
    let w2 = f32_buf(HID * OUT, -0.5, 0.5);
    let b1 = f32_buf(HID, -0.1, 0.1);
    let b2 = f32_buf(OUT, -0.1, 0.1);
    let train_x = f32_buf(SAMPLES * IN, -1.0, 1.0);
    let mut train_y = vec![0u8; SAMPLES * 4];
    for s in 0..SAMPLES {
        set_f32(&mut train_y, s, rng.gen_range(0..OUT as u32) as f32);
    }
    vec![hyper, w1, w2, b1, b2, train_x, train_y]
}

pub(crate) fn kernel(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    let lr = eng.load_f32(0, 0)?;

    // Stream the network parameters into BRAM.
    let mut net = Net {
        w1: [0.0; IN * HID],
        w2: [0.0; HID * OUT],
        b1: [0.0; HID],
        b2: [0.0; OUT],
    };
    for i in 0..IN * HID {
        net.w1[i] = eng.load_f32(1, i as u64)?;
    }
    for i in 0..HID * OUT {
        net.w2[i] = eng.load_f32(2, i as u64)?;
    }
    for (j, b) in net.b1.iter_mut().enumerate() {
        *b = eng.load_f32(3, j as u64)?;
    }
    for (k, b) in net.b2.iter_mut().enumerate() {
        *b = eng.load_f32(4, k as u64)?;
    }

    let units = sample_units();
    for _ in 0..EPOCHS {
        for s in 0..SAMPLES {
            let mut x = [0f32; IN];
            for (i, xi) in x.iter_mut().enumerate() {
                *xi = eng.load_f32(5, (s * IN + i) as u64)?;
            }
            let y = eng.load_f32(6, s as u64)?;
            eng.compute(units);
            train_sample(&mut net, lr, &x, y);
        }
    }

    // Stream the trained parameters back.
    for (i, w) in net.w1.iter().enumerate() {
        eng.store_f32(1, i as u64, *w)?;
    }
    for (i, w) in net.w2.iter().enumerate() {
        eng.store_f32(2, i as u64, *w)?;
    }
    for (j, b) in net.b1.iter().enumerate() {
        eng.store_f32(3, j as u64, *b)?;
    }
    for (k, b) in net.b2.iter().enumerate() {
        eng.store_f32(4, k as u64, *b)?;
    }
    Ok(())
}

pub(crate) fn reference(bufs: &mut [Vec<u8>]) {
    let lr = get_f32(&bufs[0], 0);
    let mut net = Net {
        w1: [0.0; IN * HID],
        w2: [0.0; HID * OUT],
        b1: [0.0; HID],
        b2: [0.0; OUT],
    };
    for i in 0..IN * HID {
        net.w1[i] = get_f32(&bufs[1], i);
    }
    for i in 0..HID * OUT {
        net.w2[i] = get_f32(&bufs[2], i);
    }
    for j in 0..HID {
        net.b1[j] = get_f32(&bufs[3], j);
    }
    for k in 0..OUT {
        net.b2[k] = get_f32(&bufs[4], k);
    }
    for _ in 0..EPOCHS {
        for s in 0..SAMPLES {
            let mut x = [0f32; IN];
            for (i, xi) in x.iter_mut().enumerate() {
                *xi = get_f32(&bufs[5], s * IN + i);
            }
            let y = get_f32(&bufs[6], s);
            train_sample(&mut net, lr, &x, y);
        }
    }
    for (i, w) in net.w1.iter().enumerate() {
        set_f32(&mut bufs[1], i, *w);
    }
    for (i, w) in net.w2.iter().enumerate() {
        set_f32(&mut bufs[2], i, *w);
    }
    for (j, b) in net.b1.iter().enumerate() {
        set_f32(&mut bufs[3], j, *b);
    }
    for (k, b) in net.b2.iter().enumerate() {
        set_f32(&mut bufs[4], k, *b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_reduces_loss() {
        let mut bufs = init(7);
        let before = bufs.clone();
        reference(&mut bufs);
        assert_ne!(bufs[1], before[1], "weights must move");

        // Measure mean squared error before and after on the train set.
        let mse = |bufs: &[Vec<u8>]| -> f32 {
            let mut net = Net {
                w1: [0.0; IN * HID],
                w2: [0.0; HID * OUT],
                b1: [0.0; HID],
                b2: [0.0; OUT],
            };
            for i in 0..IN * HID {
                net.w1[i] = get_f32(&bufs[1], i);
            }
            for i in 0..HID * OUT {
                net.w2[i] = get_f32(&bufs[2], i);
            }
            for j in 0..HID {
                net.b1[j] = get_f32(&bufs[3], j);
            }
            for k in 0..OUT {
                net.b2[k] = get_f32(&bufs[4], k);
            }
            let mut total = 0.0;
            for s in 0..SAMPLES {
                let mut x = [0f32; IN];
                for (i, xi) in x.iter_mut().enumerate() {
                    *xi = get_f32(&bufs[5], s * IN + i);
                }
                let target = (get_f32(&bufs[6], s) as usize) % OUT;
                let mut h = [0f32; HID];
                for (j, hj) in h.iter_mut().enumerate() {
                    let mut acc = net.b1[j];
                    for (i, xi) in x.iter().enumerate() {
                        acc += net.w1[i * HID + j] * xi;
                    }
                    *hj = sigmoid(acc);
                }
                for k in 0..OUT {
                    let mut acc = net.b2[k];
                    for (j, hj) in h.iter().enumerate() {
                        acc += net.w2[j * OUT + k] * hj;
                    }
                    let o = sigmoid(acc);
                    let t = if k == target { 1.0 } else { 0.0 };
                    total += (o - t) * (o - t);
                }
            }
            total / SAMPLES as f32
        };
        assert!(
            mse(&bufs) < mse(&before),
            "one epoch should reduce training loss"
        );
    }
}
