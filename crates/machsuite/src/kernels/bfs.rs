//! `bfs_bulk` / `bfs_queue` — breadth-first search over a CSR graph.
//!
//! 512 nodes, 4096 edges. The data-dependent edge and level loads are
//! exactly the accesses an accelerator cannot cache or burst, which is why
//! both variants are memory-bound and end up *slower* than the CPU in the
//! paper's Figure 7.

use super::{get_u32, set_u32};
use hetsim::{Engine, ExecFault};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 512;
const EDGES: usize = 4096;
const DEGREE: usize = EDGES / NODES;
const MAX_HORIZONS: usize = 128;
const UNVISITED: u32 = u32::MAX;

pub(crate) fn init(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xbf5);
    let start = 0u32;

    let mut params = vec![0u8; 40];
    set_u32(&mut params, 0, start);
    set_u32(&mut params, 1, NODES as u32);
    set_u32(&mut params, 2, EDGES as u32);

    let mut nodes = vec![0u8; NODES * 8];
    let mut edges = vec![0u8; EDGES * 4];
    for n in 0..NODES {
        set_u32(&mut nodes, n * 2, (n * DEGREE) as u32);
        set_u32(&mut nodes, n * 2 + 1, ((n + 1) * DEGREE) as u32);
        for d in 0..DEGREE {
            set_u32(&mut edges, n * DEGREE + d, rng.gen_range(0..NODES as u32));
        }
    }

    let mut level = vec![0u8; NODES * 4];
    for n in 0..NODES {
        set_u32(&mut level, n, if n as u32 == start { 0 } else { UNVISITED });
    }
    let level_counts = vec![0u8; 128 * 4];
    vec![params, nodes, edges, level, level_counts]
}

pub(crate) fn kernel_bulk(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    let n_nodes = eng.load_u32(0, 1)? as u64;
    eng.store_u32(4, 0, 1)?; // the start node is the whole of horizon 0
    for horizon in 0..MAX_HORIZONS as u32 {
        let mut found = 0u32;
        for n in 0..n_nodes {
            let lvl = eng.load_u32(3, n)?;
            eng.compute(1);
            if lvl != horizon {
                continue;
            }
            let begin = eng.load_u32(1, n * 2)? as u64;
            let end = eng.load_u32(1, n * 2 + 1)? as u64;
            for e in begin..end {
                let tgt = eng.load_u32(2, e)? as u64;
                let tlvl = eng.load_u32(3, tgt)?;
                eng.compute(2);
                if tlvl == UNVISITED {
                    eng.store_u32(3, tgt, horizon + 1)?;
                    found += 1;
                }
            }
        }
        if found == 0 {
            break;
        }
        eng.store_u32(4, u64::from(horizon) + 1, found)?;
    }
    Ok(())
}

pub(crate) fn kernel_queue(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    let start = eng.load_u32(0, 0)? as u64;
    // The worklist lives in accelerator BRAM: only graph state is DMA.
    let mut queue = std::collections::VecDeque::with_capacity(NODES);
    let mut counts = [0u32; MAX_HORIZONS];
    counts[0] = 1;
    queue.push_back(start);
    let mut max_level = 0u32;
    while let Some(n) = queue.pop_front() {
        let lvl = eng.load_u32(3, n)?;
        let begin = eng.load_u32(1, n * 2)? as u64;
        let end = eng.load_u32(1, n * 2 + 1)? as u64;
        for e in begin..end {
            let tgt = eng.load_u32(2, e)? as u64;
            let tlvl = eng.load_u32(3, tgt)?;
            eng.compute(2);
            if tlvl == UNVISITED {
                eng.store_u32(3, tgt, lvl + 1)?;
                counts[(lvl + 1) as usize] += 1;
                max_level = max_level.max(lvl + 1);
                queue.push_back(tgt);
            }
        }
    }
    for h in 0..=max_level {
        eng.store_u32(4, u64::from(h), counts[h as usize])?;
    }
    Ok(())
}

fn reference_levels(bufs: &mut [Vec<u8>]) -> [u32; MAX_HORIZONS] {
    let start = get_u32(&bufs[0], 0) as usize;
    let mut counts = [0u32; MAX_HORIZONS];
    counts[0] = 1;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        let lvl = get_u32(&bufs[3], n);
        let begin = get_u32(&bufs[1], n * 2) as usize;
        let end = get_u32(&bufs[1], n * 2 + 1) as usize;
        for e in begin..end {
            let tgt = get_u32(&bufs[2], e) as usize;
            if get_u32(&bufs[3], tgt) == UNVISITED {
                let (level, counts_ref) = (&mut bufs[3], &mut counts);
                set_u32(level, tgt, lvl + 1);
                counts_ref[(lvl + 1) as usize] += 1;
                queue.push_back(tgt);
            }
        }
    }
    counts
}

pub(crate) fn reference_bulk(bufs: &mut [Vec<u8>]) {
    let counts = reference_levels(bufs);
    // The bulk kernel stores counts[h] for every non-empty horizon.
    set_u32(&mut bufs[4], 0, 1);
    for (h, c) in counts.iter().enumerate().skip(1) {
        if *c > 0 {
            set_u32(&mut bufs[4], h, *c);
        }
    }
}

pub(crate) fn reference_queue(bufs: &mut [Vec<u8>]) {
    let counts = reference_levels(bufs);
    let max_level = (0..MAX_HORIZONS)
        .rev()
        .find(|h| counts[*h] > 0)
        .unwrap_or(0);
    for (h, c) in counts.iter().enumerate().take(max_level + 1) {
        set_u32(&mut bufs[4], h, *c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_levels_are_shortest_paths() {
        let mut bufs = init(3);
        reference_bulk(&mut bufs);
        // Level of the start node is 0, and every reached node's level is
        // one more than some predecessor's.
        assert_eq!(get_u32(&bufs[3], 0), 0);
        for n in 0..NODES {
            let lvl = get_u32(&bufs[3], n);
            if lvl == UNVISITED || lvl == 0 {
                continue;
            }
            let mut has_pred = false;
            for m in 0..NODES {
                if get_u32(&bufs[3], m) + 1 == lvl {
                    let b = get_u32(&bufs[1], m * 2) as usize;
                    let e = get_u32(&bufs[1], m * 2 + 1) as usize;
                    if (b..e).any(|i| get_u32(&bufs[2], i) as usize == n) {
                        has_pred = true;
                        break;
                    }
                }
            }
            assert!(has_pred, "node {n} at level {lvl} has no predecessor");
        }
    }

    #[test]
    fn counts_sum_to_reached_nodes() {
        let mut bufs = init(9);
        reference_queue(&mut bufs);
        let reached = (0..NODES)
            .filter(|n| get_u32(&bufs[3], *n) != UNVISITED)
            .count() as u32;
        let counted: u32 = (0..128).map(|h| get_u32(&bufs[4], h)).sum();
        assert_eq!(counted, reached);
    }
}
