//! Buggy kernel variants — the bugs §6.2 reports observing "in most
//! accelerator benchmarks with particular test data, including sort_radix
//! and backprop. For example, a user-defined loop bound may be larger than
//! the size of an array accessed by the loop."
//!
//! Each function is the real kernel with one realistic defect injected.
//! On an unprotected system they read or corrupt neighbouring memory
//! silently; behind the CapChecker the first out-of-bounds access raises
//! an exception traced to the offending object.

use hetsim::{Engine, ExecFault};

/// The faulty variants available (each names the defect).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fault {
    /// `backprop` trained with a user-supplied sample count larger than
    /// the training set: reads past `train_x`.
    BackpropOvertrain,
    /// `sort_radix` scatter with an off-by-one element count: writes one
    /// element past the temp buffer.
    SortRadixScatterOverflow,
    /// `stencil2d` without the boundary clamp: reads rows past `orig`.
    StencilUnclampedRows,
    /// `kmp` scanning a text whose length register was corrupted upward:
    /// reads past the text buffer.
    KmpRunawayScan,
    /// `spmv_crs` with a column index outside the vector (unsanitized
    /// input data steering the gather).
    SpmvWildColumn,
}

impl Fault {
    /// Every injected defect.
    pub const ALL: [Fault; 5] = [
        Fault::BackpropOvertrain,
        Fault::SortRadixScatterOverflow,
        Fault::StencilUnclampedRows,
        Fault::KmpRunawayScan,
        Fault::SpmvWildColumn,
    ];

    /// The benchmark this defect lives in.
    #[must_use]
    pub fn benchmark(self) -> crate::Benchmark {
        match self {
            Fault::BackpropOvertrain => crate::Benchmark::Backprop,
            Fault::SortRadixScatterOverflow => crate::Benchmark::SortRadix,
            Fault::StencilUnclampedRows => crate::Benchmark::Stencil2d,
            Fault::KmpRunawayScan => crate::Benchmark::Kmp,
            Fault::SpmvWildColumn => crate::Benchmark::SpmvCrs,
        }
    }

    /// The object index the defect dereferences out of bounds — what the
    /// CapChecker's exception trace should point at.
    #[must_use]
    pub fn offending_object(self) -> usize {
        match self {
            Fault::BackpropOvertrain => 5,        // train_x
            Fault::SortRadixScatterOverflow => 1, // temp
            Fault::StencilUnclampedRows => 1,     // orig
            Fault::KmpRunawayScan => 2,           // text
            Fault::SpmvWildColumn => 3,           // x
        }
    }

    /// Runs the defective kernel. On a protected system the returned
    /// error is the denial of the first out-of-bounds access.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ExecFault`].
    pub fn kernel(self, eng: &mut dyn Engine) -> Result<(), ExecFault> {
        match self {
            Fault::BackpropOvertrain => backprop_overtrain(eng),
            Fault::SortRadixScatterOverflow => sort_radix_scatter_overflow(eng),
            Fault::StencilUnclampedRows => stencil_unclamped_rows(eng),
            Fault::KmpRunawayScan => kmp_runaway_scan(eng),
            Fault::SpmvWildColumn => spmv_wild_column(eng),
        }
    }
}

/// backprop's training loop with `n_samples` taken from (corrupt) user
/// input: 652 real samples, 700 requested.
fn backprop_overtrain(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    let claimed_samples = 700u64; // train_x holds 652 * 4 f32
    let mut acc = 0f32;
    for s in 0..claimed_samples {
        for i in 0..4 {
            acc += eng.load_f32(5, s * 4 + i)?;
            eng.compute(2);
        }
    }
    eng.store_f32(4, 0, acc)?;
    Ok(())
}

/// sort_radix's scatter writing `N + 1` elements (`<=` instead of `<`).
fn sort_radix_scatter_overflow(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    let n = 2048u64; // temp holds exactly 2048 u32
    for i in 0..=n {
        let v = eng.load_u32(0, i % n)?;
        eng.compute(2);
        eng.store_u32(1, i, v)?; // i == n is one past the end
    }
    Ok(())
}

/// stencil2d iterating all 64 rows instead of 62: the bottom taps read
/// past the end of `orig`.
fn stencil_unclamped_rows(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    let (rows, cols) = (64u64, 128u64);
    for r in 0..rows {
        // BUG: should stop at rows - 2
        for c in 0..cols - 2 {
            let mut acc = 0f32;
            for k1 in 0..3u64 {
                for k2 in 0..3u64 {
                    acc += eng.load_f32(1, (r + k1) * cols + c + k2)?;
                    eng.compute(2);
                }
            }
            eng.store_f32(2, r * cols + c, acc)?;
        }
    }
    Ok(())
}

/// kmp scanning 4 KiB past the text (corrupted length register).
fn kmp_runaway_scan(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    let real_len = 64824u64;
    let mut matches = 0u64;
    for i in 0..real_len + 4096 {
        let c = eng.load_u8(2, i)?;
        eng.compute(1);
        if c == b'a' {
            matches += 1;
        }
    }
    eng.store_u64(3, 0, matches)?;
    Ok(())
}

/// spmv gathering `x[col]` where a column index in the input was
/// corrupted to 5000 (only 494 entries exist).
fn spmv_wild_column(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    for e in 0..16u64 {
        let v = eng.load_f32(0, e)?;
        let col = if e == 7 {
            5000
        } else {
            eng.load_u32(1, e)? as u64
        };
        let xv = eng.load_f32(3, col)?;
        eng.compute(2);
        eng.store_f32(4, e % 494, v * xv)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::{DirectEngine, TaggedMemory};

    #[test]
    fn faulty_kernels_run_silently_on_unprotected_memory() {
        // The §2 point: without protection the overflow is invisible —
        // the access lands in whatever is adjacent.
        for fault in Fault::ALL {
            let bench = fault.benchmark();
            let layout = bench.place(0x1000);
            let total = layout.buffers.last().map(|b| b.end()).unwrap_or(0x2000) + (1 << 20);
            let mut mem = TaggedMemory::new(total.next_multiple_of(4096));
            for (i, img) in bench.init(1).iter().enumerate() {
                mem.write_bytes(layout.buffers[i].base, img).unwrap();
            }
            let mut eng = DirectEngine::new(&mut mem, layout);
            fault
                .kernel(&mut eng)
                .unwrap_or_else(|e| panic!("{fault:?} should run unprotected: {e}"));
        }
    }

    #[test]
    fn every_fault_names_a_real_object() {
        for fault in Fault::ALL {
            let n = fault.benchmark().buffers().len();
            assert!(fault.offending_object() < n, "{fault:?}");
        }
    }
}
