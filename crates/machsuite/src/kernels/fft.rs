//! `fft_strided` / `fft_transpose` — radix-2 FFTs.
//!
//! *Strided* streams a 1024-point transform in place through memory with a
//! twiddle ROM in buffers (the MachSuite strided loop nest); *transpose*
//! pulls a 512-point signal entirely into BRAM, transforms locally, and
//! streams it back.

use super::{get_f32, set_f32};
use hetsim::{Engine, ExecFault};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const N_STRIDED: usize = 1024;
const N_TRANSPOSE: usize = 512;
/// Work units per butterfly (complex mul + two complex adds).
const BUTTERFLY_UNITS: u64 = 10;

fn bit_reverse(i: usize, bits: u32) -> usize {
    (i as u32).reverse_bits().wrapping_shr(32 - bits) as usize
}

fn rand_signal(rng: &mut SmallRng, n: usize) -> Vec<u8> {
    let mut v = vec![0u8; n * 4];
    for i in 0..n {
        set_f32(&mut v, i, rng.gen_range(-1.0f32..1.0));
    }
    v
}

pub(crate) fn init_strided(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xff7);
    let real = rand_signal(&mut rng, N_STRIDED);
    let imag = rand_signal(&mut rng, N_STRIDED);
    let mut real_twid = vec![0u8; N_STRIDED * 4];
    let mut imag_twid = vec![0u8; N_STRIDED * 4];
    for i in 0..N_STRIDED / 2 {
        let ang = -2.0 * std::f32::consts::PI * i as f32 / N_STRIDED as f32;
        set_f32(&mut real_twid, i, ang.cos());
        set_f32(&mut imag_twid, i, ang.sin());
    }
    let work = vec![0u8; N_STRIDED * 4];
    vec![real, imag, real_twid, imag_twid, work.clone(), work]
}

pub(crate) fn init_transpose(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xff8);
    vec![
        rand_signal(&mut rng, N_TRANSPOSE),
        rand_signal(&mut rng, N_TRANSPOSE),
    ]
}

/// Decimation-in-frequency pass structure shared by kernel and reference.
fn dif_spans(n: usize) -> impl Iterator<Item = usize> {
    std::iter::successors(Some(n / 2), |s| if *s > 1 { Some(s / 2) } else { None })
}

pub(crate) fn kernel_strided(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    let n = N_STRIDED;
    for span in dif_spans(n) {
        let twid_step = n / (2 * span);
        for base in (0..n).step_by(2 * span) {
            for j in 0..span {
                let a = (base + j) as u64;
                let b = (base + j + span) as u64;
                let ra = eng.load_f32(0, a)?;
                let ia = eng.load_f32(1, a)?;
                let rb = eng.load_f32(0, b)?;
                let ib = eng.load_f32(1, b)?;
                let tw = (j * twid_step) as u64;
                let wr = eng.load_f32(2, tw)?;
                let wi = eng.load_f32(3, tw)?;
                eng.compute(BUTTERFLY_UNITS);
                let (sr, si) = (ra - rb, ia - ib);
                eng.store_f32(0, a, ra + rb)?;
                eng.store_f32(1, a, ia + ib)?;
                eng.store_f32(0, b, sr * wr - si * wi)?;
                eng.store_f32(1, b, sr * wi + si * wr)?;
            }
        }
    }
    // DIF leaves results bit-reversed: reorder through the work buffers…
    for i in 0..n {
        let r = eng.load_f32(0, i as u64)?;
        let im = eng.load_f32(1, i as u64)?;
        let d = bit_reverse(i, 10) as u64;
        eng.store_f32(4, d, r)?;
        eng.store_f32(5, d, im)?;
    }
    // …and bulk-copy the sorted spectrum back (DMA burst).
    eng.copy(0, 0, 4, 0, (n * 4) as u64)?;
    eng.copy(1, 0, 5, 0, (n * 4) as u64)?;
    Ok(())
}

pub(crate) fn reference_strided(bufs: &mut [Vec<u8>]) {
    let n = N_STRIDED;
    for span in dif_spans(n) {
        let twid_step = n / (2 * span);
        for base in (0..n).step_by(2 * span) {
            for j in 0..span {
                let (a, b) = (base + j, base + j + span);
                let (ra, ia) = (get_f32(&bufs[0], a), get_f32(&bufs[1], a));
                let (rb, ib) = (get_f32(&bufs[0], b), get_f32(&bufs[1], b));
                let tw = j * twid_step;
                let (wr, wi) = (get_f32(&bufs[2], tw), get_f32(&bufs[3], tw));
                let (sr, si) = (ra - rb, ia - ib);
                set_f32(&mut bufs[0], a, ra + rb);
                set_f32(&mut bufs[1], a, ia + ib);
                set_f32(&mut bufs[0], b, sr * wr - si * wi);
                set_f32(&mut bufs[1], b, sr * wi + si * wr);
            }
        }
    }
    for i in 0..n {
        let d = bit_reverse(i, 10);
        let r = get_f32(&bufs[0], i);
        let im = get_f32(&bufs[1], i);
        set_f32(&mut bufs[4], d, r);
        set_f32(&mut bufs[5], d, im);
    }
    bufs[0] = bufs[4].clone();
    bufs[1] = bufs[5].clone();
}

/// In-place local FFT used by the transpose variant (DIT after an explicit
/// bit-reversal), with twiddles computed on the fly — identical code on
/// both paths keeps the bits equal.
fn local_fft(re: &mut [f32], im: &mut [f32]) {
    let n = re.len();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = bit_reverse(i, bits);
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        for base in (0..n).step_by(len) {
            for j in 0..len / 2 {
                let ang = -2.0 * std::f32::consts::PI * j as f32 / len as f32;
                let (wr, wi) = (ang.cos(), ang.sin());
                let (a, b) = (base + j, base + j + len / 2);
                let (tr, ti) = (re[b] * wr - im[b] * wi, re[b] * wi + im[b] * wr);
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
            }
        }
        len *= 2;
    }
}

/// Chained transforms per invocation (a spectral-iteration pipeline):
/// each pass streams the signal in, transforms in BRAM, streams it out.
const TRANSPOSE_PASSES: usize = 8;

pub(crate) fn kernel_transpose(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    let n = N_TRANSPOSE;
    for _ in 0..TRANSPOSE_PASSES {
        let mut re = vec![0f32; n];
        let mut im = vec![0f32; n];
        for i in 0..n {
            re[i] = eng.load_f32(0, i as u64)?;
            im[i] = eng.load_f32(1, i as u64)?;
        }
        eng.compute((n as u64 / 2) * 9 * BUTTERFLY_UNITS + n as u64);
        local_fft(&mut re, &mut im);
        for i in 0..n {
            eng.store_f32(0, i as u64, re[i])?;
            eng.store_f32(1, i as u64, im[i])?;
        }
    }
    Ok(())
}

pub(crate) fn reference_transpose(bufs: &mut [Vec<u8>]) {
    let n = N_TRANSPOSE;
    for _ in 0..TRANSPOSE_PASSES {
        let mut re = vec![0f32; n];
        let mut im = vec![0f32; n];
        for i in 0..n {
            re[i] = get_f32(&bufs[0], i);
            im[i] = get_f32(&bufs[1], i);
        }
        local_fft(&mut re, &mut im);
        for i in 0..n {
            set_f32(&mut bufs[0], i, re[i]);
            set_f32(&mut bufs[1], i, im[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference DFT for spot checks.
    fn dft(re: &[f32], im: &[f32], k: usize) -> (f32, f32) {
        let n = re.len();
        let mut acc = (0f64, 0f64);
        for t in 0..n {
            let ang = -2.0 * std::f64::consts::PI * (k * t % n) as f64 / n as f64;
            acc.0 += re[t] as f64 * ang.cos() - im[t] as f64 * ang.sin();
            acc.1 += re[t] as f64 * ang.sin() + im[t] as f64 * ang.cos();
        }
        (acc.0 as f32, acc.1 as f32)
    }

    #[test]
    fn strided_matches_dft() {
        let mut bufs = init_strided(5);
        let re_in: Vec<f32> = (0..N_STRIDED).map(|i| get_f32(&bufs[0], i)).collect();
        let im_in: Vec<f32> = (0..N_STRIDED).map(|i| get_f32(&bufs[1], i)).collect();
        reference_strided(&mut bufs);
        for k in [0usize, 1, 17, 511, 1023] {
            let (er, ei) = dft(&re_in, &im_in, k);
            let (gr, gi) = (get_f32(&bufs[0], k), get_f32(&bufs[1], k));
            assert!((er - gr).abs() < 0.05, "k={k}: re {gr} vs {er}");
            assert!((ei - gi).abs() < 0.05, "k={k}: im {gi} vs {ei}");
        }
    }

    #[test]
    fn transpose_local_fft_matches_dft() {
        let bufs = init_transpose(5);
        let mut re: Vec<f32> = (0..N_TRANSPOSE).map(|i| get_f32(&bufs[0], i)).collect();
        let mut im: Vec<f32> = (0..N_TRANSPOSE).map(|i| get_f32(&bufs[1], i)).collect();
        let (re_in, im_in) = (re.clone(), im.clone());
        local_fft(&mut re, &mut im);
        for k in [0usize, 3, 255, 511] {
            let (er, ei) = dft(&re_in, &im_in, k);
            assert!((er - re[k]).abs() < 0.05, "k={k}: re {} vs {er}", re[k]);
            assert!((ei - im[k]).abs() < 0.05, "k={k}: im {} vs {ei}", im[k]);
        }
    }
}
