//! `gemm_ncubed` / `gemm_blocked` — 64×64 single-precision matrix multiply.
//!
//! *ncubed* is the naive triple loop: two loads per multiply-accumulate,
//! so on the accelerator it is interconnect-bound (the workload of the
//! Figure 11 parallelism sweep). *blocked* packs panels with bulk copies
//! (the BLIS idiom), holds the accumulator in BRAM, and streams the result
//! out once — its heavy `memcpy` traffic is what lets the CHERI CPU's
//! 128-bit capability-copy instruction beat the plain CPU (Figure 10g).

use super::{get_f32, set_f32};
use hetsim::{Engine, ExecFault};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const N: usize = 64;
const BLOCK: usize = 8;

pub(crate) fn init(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e33);
    let mut mat = || {
        let mut v = vec![0u8; N * N * 4];
        for i in 0..N * N {
            set_f32(&mut v, i, rng.gen_range(-1.0f32..1.0));
        }
        v
    };
    let a = mat();
    let b = mat();
    let c = vec![0u8; N * N * 4];
    vec![a, b, c]
}

pub(crate) fn kernel_ncubed(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    for i in 0..N as u64 {
        for j in 0..N as u64 {
            let mut acc = 0f32;
            for k in 0..N as u64 {
                let a = eng.load_f32(0, i * N as u64 + k)?;
                let b = eng.load_f32(1, k * N as u64 + j)?;
                eng.compute(2);
                acc += a * b;
            }
            eng.store_f32(2, i * N as u64 + j, acc)?;
        }
    }
    Ok(())
}

pub(crate) fn kernel_blocked(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    // Full C accumulator in BRAM (16 KiB), streamed out once at the end;
    // until then the C buffer doubles as the packing scratchpad:
    // bytes [0, 2048) hold the packed B panel, [4096, 6144) the A panel.
    let mut acc = vec![0f32; N * N];
    for jb in 0..N / BLOCK {
        // Pack the B column panel (64 rows × 8 cols) contiguously.
        for r in 0..N as u64 {
            eng.copy(
                2,
                r * (BLOCK as u64 * 4),
                1,
                (r * N as u64 + (jb * BLOCK) as u64) * 4,
                BLOCK as u64 * 4,
            )?;
        }
        let mut bp = [0f32; N * BLOCK];
        for (t, v) in bp.iter_mut().enumerate() {
            *v = eng.load_f32(2, t as u64)?;
        }
        for ib in 0..N / BLOCK {
            // Pack the A row panel (8 rows × 64 cols).
            for rr in 0..BLOCK as u64 {
                eng.copy(
                    2,
                    4096 / 4 * 4 + rr * (N as u64 * 4),
                    0,
                    ((ib as u64 * BLOCK as u64 + rr) * N as u64) * 4,
                    N as u64 * 4,
                )?;
            }
            let mut ap = [0f32; BLOCK * N];
            for (t, v) in ap.iter_mut().enumerate() {
                *v = eng.load_f32(2, 1024 + t as u64)?;
            }
            for ii in 0..BLOCK {
                let i = ib * BLOCK + ii;
                for jj in 0..BLOCK {
                    let j = jb * BLOCK + jj;
                    let mut sum = 0f32;
                    eng.compute(2 * N as u64);
                    for k in 0..N {
                        sum += ap[ii * N + k] * bp[k * BLOCK + jj];
                    }
                    acc[i * N + j] = sum;
                }
            }
        }
    }
    for (t, v) in acc.iter().enumerate() {
        eng.store_f32(2, t as u64, *v)?;
    }
    Ok(())
}

/// Both variants compute C = A·B with identical accumulation order
/// (ascending k, starting from zero), so they share one reference.
fn reference(bufs: &mut [Vec<u8>]) {
    let mut c = vec![0u8; N * N * 4];
    for i in 0..N {
        for j in 0..N {
            let mut acc = 0f32;
            for k in 0..N {
                acc += get_f32(&bufs[0], i * N + k) * get_f32(&bufs[1], k * N + j);
            }
            set_f32(&mut c, i * N + j, acc);
        }
    }
    bufs[2] = c;
}

pub(crate) fn reference_ncubed(bufs: &mut [Vec<u8>]) {
    reference(bufs);
}

pub(crate) fn reference_blocked(bufs: &mut [Vec<u8>]) {
    reference(bufs);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_matrix_is_matrix() {
        let mut bufs = init(1);
        // Overwrite A with the identity.
        for i in 0..N {
            for k in 0..N {
                set_f32(&mut bufs[0], i * N + k, if i == k { 1.0 } else { 0.0 });
            }
        }
        let b_before = bufs[1].clone();
        reference(&mut bufs);
        for t in 0..N * N {
            assert_eq!(get_f32(&bufs[2], t), get_f32(&b_before, t));
        }
    }
}
