//! `kmp` — Knuth-Morris-Pratt substring search.
//!
//! A 4-byte pattern scanned over a 64824-byte text (the MachSuite sizes).
//! The failure table is built in registers and exported; the scan streams
//! the text byte by byte.

#[cfg(test)]
use super::{get_u32, get_u64};
use super::{set_u32, set_u64};
use hetsim::{Engine, ExecFault};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const PATTERN_LEN: usize = 4;
const TEXT_LEN: usize = 64824;
const ALPHABET: &[u8] = b"abcd";

pub(crate) fn init(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x3322);
    let pattern: Vec<u8> = (0..PATTERN_LEN)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())])
        .collect();
    let next = vec![0u8; PATTERN_LEN * 4];
    let text: Vec<u8> = (0..TEXT_LEN)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())])
        .collect();
    let n_matches = vec![0u8; 8];
    vec![pattern, next, text, n_matches]
}

fn failure_table(pattern: &[u8; PATTERN_LEN]) -> [u32; PATTERN_LEN] {
    let mut next = [0u32; PATTERN_LEN];
    let mut k = 0usize;
    for q in 1..PATTERN_LEN {
        while k > 0 && pattern[k] != pattern[q] {
            k = next[k - 1] as usize;
        }
        if pattern[k] == pattern[q] {
            k += 1;
        }
        next[q] = k as u32;
    }
    next
}

pub(crate) fn kernel(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    let mut pattern = [0u8; PATTERN_LEN];
    for (i, p) in pattern.iter_mut().enumerate() {
        *p = eng.load_u8(0, i as u64)?;
    }
    eng.compute(PATTERN_LEN as u64 * 4);
    let next = failure_table(&pattern);
    for (q, n) in next.iter().enumerate() {
        eng.store_u32(1, q as u64, *n)?;
    }

    let mut q = 0usize;
    let mut matches = 0u64;
    for i in 0..TEXT_LEN as u64 {
        let c = eng.load_u8(2, i)?;
        eng.compute(2);
        while q > 0 && pattern[q] != c {
            eng.compute(1);
            q = next[q - 1] as usize;
        }
        if pattern[q] == c {
            q += 1;
        }
        if q == PATTERN_LEN {
            matches += 1;
            q = next[q - 1] as usize;
        }
    }
    eng.store_u64(3, 0, matches)?;
    Ok(())
}

pub(crate) fn reference(bufs: &mut [Vec<u8>]) {
    let pattern: [u8; PATTERN_LEN] = bufs[0][..PATTERN_LEN].try_into().expect("pattern size");
    let next = failure_table(&pattern);
    for (qi, n) in next.iter().enumerate() {
        set_u32(&mut bufs[1], qi, *n);
    }
    let mut q = 0usize;
    let mut matches = 0u64;
    for i in 0..TEXT_LEN {
        let c = bufs[2][i];
        while q > 0 && pattern[q] != c {
            q = next[q - 1] as usize;
        }
        if pattern[q] == c {
            q += 1;
        }
        if q == PATTERN_LEN {
            matches += 1;
            q = next[q - 1] as usize;
        }
    }
    set_u64(&mut bufs[3], 0, matches);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_overlapping_occurrences() {
        let mut bufs = init(0);
        bufs[0] = b"aaaa".to_vec();
        bufs[2] = vec![b'a'; TEXT_LEN];
        reference(&mut bufs);
        assert_eq!(get_u64(&bufs[3], 0), (TEXT_LEN - PATTERN_LEN + 1) as u64);
    }

    #[test]
    fn matches_naive_search() {
        let mut bufs = init(11);
        let pattern = bufs[0].clone();
        let text = bufs[2].clone();
        reference(&mut bufs);
        let naive = text
            .windows(PATTERN_LEN)
            .filter(|w| *w == &pattern[..])
            .count() as u64;
        assert_eq!(get_u64(&bufs[3], 0), naive);
    }

    #[test]
    fn failure_table_is_standard() {
        assert_eq!(failure_table(b"abab"), [0, 0, 1, 2]);
        assert_eq!(failure_table(b"aaaa"), [0, 1, 2, 3]);
        assert_eq!(failure_table(b"abcd"), [0, 0, 0, 0]);
        let mut bufs = init(4);
        reference(&mut bufs);
        assert_eq!(get_u32(&bufs[1], 0), 0);
    }
}
