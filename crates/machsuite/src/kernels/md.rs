//! `md_knn` / `md_grid` — Lennard-Jones molecular dynamics force kernels.
//!
//! *knn* walks a precomputed neighbor list with data-dependent position
//! loads the accelerator cannot cache — the paper's small-latency,
//! memory-bound outlier (large *percentage* CapChecker overhead in
//! Figure 8 because the fixed capability-install cost dominates).
//! *grid* bins atoms into cells, pulls positions into BRAM once, and is
//! compute-bound.

use super::{get_f32, get_u32, set_f32, set_u32};
use hetsim::{Engine, ExecFault};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

// ---- knn ----

/// Atoms stored in the buffers (Table 2 sizes).
const KNN_ATOMS: usize = 1024;
/// Neighbors per atom.
const KNN_NEIGHBORS: usize = 4;
/// Atoms processed per task invocation (one timestep slice — keeps the
/// absolute latency in the few-thousand-cycle range the paper reports).
const KNN_PROCESS: usize = 32;
/// Work units per pair interaction (r², 1/r⁶, force magnitude).
const LJ_UNITS: u64 = 12;

fn lj_force(dx: f32, dy: f32, dz: f32) -> (f32, f32) {
    let r2 = dx * dx + dy * dy + dz * dz + 0.01;
    let inv_r2 = 1.0 / r2;
    let inv_r6 = inv_r2 * inv_r2 * inv_r2;
    let force = 24.0 * inv_r2 * inv_r6 * (2.0 * inv_r6 - 1.0);
    let energy = 4.0 * inv_r6 * (inv_r6 - 1.0);
    (force, energy)
}

pub(crate) fn init_knn(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x3d12);
    let mut coords = || {
        let mut v = vec![0u8; KNN_ATOMS * 4];
        for i in 0..KNN_ATOMS {
            set_f32(&mut v, i, rng.gen_range(0.0f32..16.0));
        }
        v
    };
    let mut params = vec![0u8; 1024];
    set_f32(&mut params, 0, 2.5); // cutoff (decorative: LJ applied to all)
    let x = coords();
    let y = coords();
    let z = coords();
    let mut nl = vec![0u8; KNN_ATOMS * KNN_NEIGHBORS * 4];
    for i in 0..KNN_ATOMS * KNN_NEIGHBORS {
        set_u32(&mut nl, i, rng.gen_range(0..KNN_ATOMS as u32));
    }
    let force = vec![0u8; KNN_ATOMS * 4];
    let energy = vec![0u8; KNN_ATOMS * 4];
    vec![params, x, y, z, nl, force, energy]
}

pub(crate) fn kernel_knn(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    let _cutoff = eng.load_f32(0, 0)?;
    for i in 0..KNN_PROCESS as u64 {
        let xi = eng.load_f32(1, i)?;
        let yi = eng.load_f32(2, i)?;
        let zi = eng.load_f32(3, i)?;
        let mut f = 0f32;
        let mut e = 0f32;
        for n in 0..KNN_NEIGHBORS as u64 {
            let j = eng.load_u32(4, i * KNN_NEIGHBORS as u64 + n)? as u64;
            let xj = eng.load_f32(1, j)?;
            let yj = eng.load_f32(2, j)?;
            let zj = eng.load_f32(3, j)?;
            eng.compute(LJ_UNITS);
            let (df, de) = lj_force(xi - xj, yi - yj, zi - zj);
            f += df;
            e += de;
        }
        eng.store_f32(5, i, f)?;
        eng.store_f32(6, i, e)?;
    }
    Ok(())
}

pub(crate) fn reference_knn(bufs: &mut [Vec<u8>]) {
    for i in 0..KNN_PROCESS {
        let (xi, yi, zi) = (
            get_f32(&bufs[1], i),
            get_f32(&bufs[2], i),
            get_f32(&bufs[3], i),
        );
        let mut f = 0f32;
        let mut e = 0f32;
        for n in 0..KNN_NEIGHBORS {
            let j = get_u32(&bufs[4], i * KNN_NEIGHBORS + n) as usize;
            let (xj, yj, zj) = (
                get_f32(&bufs[1], j),
                get_f32(&bufs[2], j),
                get_f32(&bufs[3], j),
            );
            let (df, de) = lj_force(xi - xj, yi - yj, zi - zj);
            f += df;
            e += de;
        }
        set_f32(&mut bufs[5], i, f);
        set_f32(&mut bufs[6], i, e);
    }
}

// ---- grid ----

/// Cells per axis.
const GRID_DIM: usize = 4;
const GRID_CELLS: usize = GRID_DIM * GRID_DIM * GRID_DIM;
/// Slots per cell in the bin table.
const GRID_SLOTS: usize = 10;
/// Atoms.
const GRID_ATOMS: usize = 160;
/// Domain edge length.
const GRID_EDGE: f32 = 4.0;
const EMPTY: u32 = u32::MAX;

fn cell_of(x: f32, y: f32, z: f32) -> usize {
    let clamp = |v: f32| (v.clamp(0.0, GRID_EDGE - 1e-3) as usize).min(GRID_DIM - 1);
    (clamp(x) * GRID_DIM + clamp(y)) * GRID_DIM + clamp(z)
}

pub(crate) fn init_grid(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x3d13);
    let mut position = vec![0u8; GRID_ATOMS * 16];
    let mut bin_counts = vec![0u8; GRID_CELLS * 4];
    let mut bin_atoms = vec![0u8; GRID_CELLS * GRID_SLOTS * 4];
    for s in 0..GRID_CELLS * GRID_SLOTS {
        set_u32(&mut bin_atoms, s, EMPTY);
    }
    for a in 0..GRID_ATOMS {
        // Rejection-free placement: pick a cell with a free slot.
        loop {
            let x = rng.gen_range(0.0f32..GRID_EDGE);
            let y = rng.gen_range(0.0f32..GRID_EDGE);
            let z = rng.gen_range(0.0f32..GRID_EDGE);
            let c = cell_of(x, y, z);
            let count = get_u32(&bin_counts, c) as usize;
            if count < GRID_SLOTS {
                set_f32(&mut position, a * 4, x);
                set_f32(&mut position, a * 4 + 1, y);
                set_f32(&mut position, a * 4 + 2, z);
                set_u32(&mut bin_atoms, c * GRID_SLOTS + count, a as u32);
                set_u32(&mut bin_counts, c, count as u32 + 1);
                break;
            }
        }
    }
    let force = vec![0u8; GRID_ATOMS * 16];
    let vel = vec![0u8; GRID_ATOMS * 4];
    vec![
        bin_counts,
        bin_atoms,
        position,
        force,
        vel.clone(),
        vel.clone(),
        vel,
    ]
}

struct GridState {
    counts: [u32; GRID_CELLS],
    atoms: [u32; GRID_CELLS * GRID_SLOTS],
    pos: [[f32; 3]; GRID_ATOMS],
}

fn grid_forces(st: &GridState) -> [[f32; 3]; GRID_ATOMS] {
    let mut forces = [[0f32; 3]; GRID_ATOMS];
    for cx in 0..GRID_DIM {
        for cy in 0..GRID_DIM {
            for cz in 0..GRID_DIM {
                let c = (cx * GRID_DIM + cy) * GRID_DIM + cz;
                for s in 0..st.counts[c] as usize {
                    let i = st.atoms[c * GRID_SLOTS + s] as usize;
                    let pi = st.pos[i];
                    let mut acc = [0f32; 3];
                    // Neighboring cells, clamped at the walls.
                    for nx in cx.saturating_sub(1)..=(cx + 1).min(GRID_DIM - 1) {
                        for ny in cy.saturating_sub(1)..=(cy + 1).min(GRID_DIM - 1) {
                            for nz in cz.saturating_sub(1)..=(cz + 1).min(GRID_DIM - 1) {
                                let n = (nx * GRID_DIM + ny) * GRID_DIM + nz;
                                for t in 0..st.counts[n] as usize {
                                    let j = st.atoms[n * GRID_SLOTS + t] as usize;
                                    if j == i {
                                        continue;
                                    }
                                    let pj = st.pos[j];
                                    let (df, _) =
                                        lj_force(pi[0] - pj[0], pi[1] - pj[1], pi[2] - pj[2]);
                                    acc[0] += df * (pi[0] - pj[0]);
                                    acc[1] += df * (pi[1] - pj[1]);
                                    acc[2] += df * (pi[2] - pj[2]);
                                }
                            }
                        }
                    }
                    forces[i] = acc;
                }
            }
        }
    }
    forces
}

fn grid_pair_count(st: &GridState) -> u64 {
    let mut pairs = 0u64;
    for cx in 0..GRID_DIM {
        for cy in 0..GRID_DIM {
            for cz in 0..GRID_DIM {
                let c = (cx * GRID_DIM + cy) * GRID_DIM + cz;
                let mut neigh = 0u64;
                for nx in cx.saturating_sub(1)..=(cx + 1).min(GRID_DIM - 1) {
                    for ny in cy.saturating_sub(1)..=(cy + 1).min(GRID_DIM - 1) {
                        for nz in cz.saturating_sub(1)..=(cz + 1).min(GRID_DIM - 1) {
                            let n = (nx * GRID_DIM + ny) * GRID_DIM + nz;
                            neigh += u64::from(st.counts[n]);
                        }
                    }
                }
                pairs += u64::from(st.counts[c]) * neigh;
            }
        }
    }
    pairs
}

fn load_grid_state(eng: &mut dyn Engine) -> Result<GridState, ExecFault> {
    let mut st = GridState {
        counts: [0; GRID_CELLS],
        atoms: [0; GRID_CELLS * GRID_SLOTS],
        pos: [[0.0; 3]; GRID_ATOMS],
    };
    for c in 0..GRID_CELLS {
        st.counts[c] = eng.load_u32(0, c as u64)?;
    }
    for s in 0..GRID_CELLS * GRID_SLOTS {
        st.atoms[s] = eng.load_u32(1, s as u64)?;
    }
    for a in 0..GRID_ATOMS {
        for d in 0..3 {
            st.pos[a][d] = eng.load_f32(2, (a * 4 + d) as u64)?;
        }
    }
    Ok(st)
}

/// MD timesteps per task invocation: state stays in BRAM, forces stream
/// out once at the end.
const GRID_STEPS: usize = 32;
/// Integration step (tiny, to keep the toy dynamics tame).
const GRID_DT: f32 = 1e-5;

/// One velocity-free Euler step, clamped to the domain; shared by kernel
/// and reference for bit-equality.
fn grid_step(st: &mut GridState) -> [[f32; 3]; GRID_ATOMS] {
    let forces = grid_forces(st);
    for (a, f) in forces.iter().enumerate() {
        for d in 0..3 {
            let moved = st.pos[a][d] + f[d].clamp(-100.0, 100.0) * GRID_DT;
            st.pos[a][d] = moved.clamp(0.0, GRID_EDGE);
        }
    }
    forces
}

pub(crate) fn kernel_grid(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    let mut st = load_grid_state(eng)?;
    let mut forces = [[0f32; 3]; GRID_ATOMS];
    for _ in 0..GRID_STEPS {
        eng.compute(grid_pair_count(&st) * LJ_UNITS);
        forces = grid_step(&mut st);
    }
    for (a, f) in forces.iter().enumerate() {
        for d in 0..3 {
            eng.store_f32(3, (a * 4 + d) as u64, f[d])?;
        }
    }
    Ok(())
}

pub(crate) fn reference_grid(bufs: &mut [Vec<u8>]) {
    let mut st = GridState {
        counts: [0; GRID_CELLS],
        atoms: [0; GRID_CELLS * GRID_SLOTS],
        pos: [[0.0; 3]; GRID_ATOMS],
    };
    for c in 0..GRID_CELLS {
        st.counts[c] = get_u32(&bufs[0], c);
    }
    for s in 0..GRID_CELLS * GRID_SLOTS {
        st.atoms[s] = get_u32(&bufs[1], s);
    }
    for a in 0..GRID_ATOMS {
        for d in 0..3 {
            st.pos[a][d] = get_f32(&bufs[2], a * 4 + d);
        }
    }
    let mut forces = [[0f32; 3]; GRID_ATOMS];
    for _ in 0..GRID_STEPS {
        forces = grid_step(&mut st);
    }
    for (a, f) in forces.iter().enumerate() {
        for d in 0..3 {
            set_f32(&mut bufs[3], a * 4 + d, f[d]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lj_force_is_repulsive_up_close() {
        let (f, e) = lj_force(0.1, 0.0, 0.0);
        assert!(f > 0.0, "close atoms repel");
        assert!(e > 0.0);
    }

    #[test]
    fn knn_forces_are_finite() {
        let mut bufs = init_knn(2);
        reference_knn(&mut bufs);
        for i in 0..KNN_PROCESS {
            assert!(get_f32(&bufs[5], i).is_finite());
            assert!(get_f32(&bufs[6], i).is_finite());
        }
    }

    #[test]
    fn grid_bins_are_consistent() {
        let bufs = init_grid(2);
        let mut seen = 0;
        for c in 0..GRID_CELLS {
            let cnt = get_u32(&bufs[0], c) as usize;
            assert!(cnt <= GRID_SLOTS);
            for s in 0..cnt {
                let a = get_u32(&bufs[1], c * GRID_SLOTS + s) as usize;
                assert!(a < GRID_ATOMS);
                // The atom's position really falls in this cell.
                let (x, y, z) = (
                    get_f32(&bufs[2], a * 4),
                    get_f32(&bufs[2], a * 4 + 1),
                    get_f32(&bufs[2], a * 4 + 2),
                );
                assert_eq!(cell_of(x, y, z), c);
                seen += 1;
            }
        }
        assert_eq!(seen, GRID_ATOMS);
    }

    #[test]
    fn grid_forces_nonzero_somewhere() {
        let mut bufs = init_grid(5);
        reference_grid(&mut bufs);
        let any = (0..GRID_ATOMS).any(|a| get_f32(&bufs[3], a * 4) != 0.0);
        assert!(any);
    }
}
