//! The benchmark kernels.
//!
//! Every kernel is written once against [`hetsim::Engine`] and verified
//! bit-for-bit against a pure-Rust reference via
//! [`check_against_reference`]. Kernels emit `compute(units)` between
//! memory operations; a *unit* is one data-path operation (add, multiply,
//! compare), which the timing models scale by the CPU's per-unit cost or
//! the accelerator's lane/pipeline parallelism.
//!
//! Style notes that matter for fidelity:
//!
//! * values a real HLS accelerator would keep in registers or BRAM (loop
//!   accumulators, weight matrices loaded once, lookup tables baked into
//!   LUTs) live in Rust locals, not in memory traffic;
//! * data-dependent accesses (neighbor lists, graph edges, sparse column
//!   indices) go through the engine every time — they are exactly the
//!   accesses a protection mechanism must vet.

// Kernels are written in the explicit indexed-loop style of the HLS C
// they transcribe (and their references must match them op for op), so
// the iterator-style lint does not apply here.
#![allow(clippy::needless_range_loop)]

mod aes;
mod backprop;
mod bfs;
pub mod faulty;
mod fft;
mod gemm;
mod kmp;
mod md;
mod nw;
mod sort;
mod spmv;
mod stencil;
mod viterbi;

use crate::Benchmark;
use hetsim::{DirectEngine, Engine, ExecFault, TaggedMemory};

/// Deterministic initial buffer contents for `bench`.
#[must_use]
pub fn init(bench: Benchmark, seed: u64) -> Vec<Vec<u8>> {
    match bench {
        Benchmark::Aes => aes::init(seed),
        Benchmark::Backprop => backprop::init(seed),
        Benchmark::BfsBulk | Benchmark::BfsQueue => bfs::init(seed),
        Benchmark::FftStrided => fft::init_strided(seed),
        Benchmark::FftTranspose => fft::init_transpose(seed),
        Benchmark::GemmBlocked | Benchmark::GemmNcubed => gemm::init(seed),
        Benchmark::Kmp => kmp::init(seed),
        Benchmark::MdGrid => md::init_grid(seed),
        Benchmark::MdKnn => md::init_knn(seed),
        Benchmark::Nw => nw::init(seed),
        Benchmark::SortMerge => sort::init_merge(seed),
        Benchmark::SortRadix => sort::init_radix(seed),
        Benchmark::SpmvCrs => spmv::init_crs(seed),
        Benchmark::SpmvEllpack => spmv::init_ellpack(seed),
        Benchmark::Stencil2d => stencil::init_2d(seed),
        Benchmark::Stencil3d => stencil::init_3d(seed),
        Benchmark::Viterbi => viterbi::init(seed),
    }
}

/// Runs `bench`'s kernel on `eng`.
///
/// # Errors
///
/// Propagates the first [`ExecFault`].
pub fn run(bench: Benchmark, eng: &mut dyn Engine) -> Result<(), ExecFault> {
    match bench {
        Benchmark::Aes => aes::kernel(eng),
        Benchmark::Backprop => backprop::kernel(eng),
        Benchmark::BfsBulk => bfs::kernel_bulk(eng),
        Benchmark::BfsQueue => bfs::kernel_queue(eng),
        Benchmark::FftStrided => fft::kernel_strided(eng),
        Benchmark::FftTranspose => fft::kernel_transpose(eng),
        Benchmark::GemmBlocked => gemm::kernel_blocked(eng),
        Benchmark::GemmNcubed => gemm::kernel_ncubed(eng),
        Benchmark::Kmp => kmp::kernel(eng),
        Benchmark::MdGrid => md::kernel_grid(eng),
        Benchmark::MdKnn => md::kernel_knn(eng),
        Benchmark::Nw => nw::kernel(eng),
        Benchmark::SortMerge => sort::kernel_merge(eng),
        Benchmark::SortRadix => sort::kernel_radix(eng),
        Benchmark::SpmvCrs => spmv::kernel_crs(eng),
        Benchmark::SpmvEllpack => spmv::kernel_ellpack(eng),
        Benchmark::Stencil2d => stencil::kernel_2d(eng),
        Benchmark::Stencil3d => stencil::kernel_3d(eng),
        Benchmark::Viterbi => viterbi::kernel(eng),
    }
}

/// Applies `bench`'s pure-Rust golden reference to buffer images.
pub fn reference(bench: Benchmark, bufs: &mut [Vec<u8>]) {
    match bench {
        Benchmark::Aes => aes::reference(bufs),
        Benchmark::Backprop => backprop::reference(bufs),
        Benchmark::BfsBulk => bfs::reference_bulk(bufs),
        Benchmark::BfsQueue => bfs::reference_queue(bufs),
        Benchmark::FftStrided => fft::reference_strided(bufs),
        Benchmark::FftTranspose => fft::reference_transpose(bufs),
        Benchmark::GemmBlocked => gemm::reference_blocked(bufs),
        Benchmark::GemmNcubed => gemm::reference_ncubed(bufs),
        Benchmark::Kmp => kmp::reference(bufs),
        Benchmark::MdGrid => md::reference_grid(bufs),
        Benchmark::MdKnn => md::reference_knn(bufs),
        Benchmark::Nw => nw::reference(bufs),
        Benchmark::SortMerge => sort::reference_merge(bufs),
        Benchmark::SortRadix => sort::reference_radix(bufs),
        Benchmark::SpmvCrs => spmv::reference_crs(bufs),
        Benchmark::SpmvEllpack => spmv::reference_ellpack(bufs),
        Benchmark::Stencil2d => stencil::reference_2d(bufs),
        Benchmark::Stencil3d => stencil::reference_3d(bufs),
        Benchmark::Viterbi => viterbi::reference(bufs),
    }
}

/// Runs the kernel through a [`DirectEngine`] over fresh memory and
/// compares every output buffer byte-for-byte against the reference.
///
/// Returns the recorded trace on success.
///
/// # Errors
///
/// A human-readable description of the first divergence, or of a kernel
/// fault (neither should ever happen).
pub fn check_against_reference(bench: Benchmark, seed: u64) -> Result<hetsim::Trace, String> {
    let layout = bench.place(0x1000);
    let total = layout
        .buffers
        .last()
        .map_or(0x2000, |b| b.end())
        .next_multiple_of(4096)
        + 4096;
    let mut mem = TaggedMemory::new(total);
    let images = init(bench, seed);
    assert_eq!(
        images.len(),
        layout.buffers.len(),
        "{bench}: init/buffers mismatch"
    );
    for (region, image) in layout.buffers.iter().zip(&images) {
        assert_eq!(
            region.size as usize,
            image.len(),
            "{bench}: init size mismatch"
        );
        mem.write_bytes(region.base, image)
            .expect("placement fits memory");
    }

    let mut eng = DirectEngine::new(&mut mem, layout.clone());
    run(bench, &mut eng).map_err(|e| format!("{bench}: kernel fault: {e}"))?;
    let trace = eng.into_trace();

    let mut golden = images;
    reference(bench, &mut golden);

    for (i, (region, want)) in layout.buffers.iter().zip(&golden).enumerate() {
        let mut got = vec![0u8; want.len()];
        mem.read_bytes(region.base, &mut got)
            .expect("placement fits memory");
        if &got != want {
            let byte = got.iter().zip(want).position(|(a, b)| a != b).unwrap_or(0);
            return Err(format!(
                "{bench}: buffer {i} ({}) diverges at byte {byte}: got {:#04x}, want {:#04x}",
                bench.buffers()[i].name,
                got[byte],
                want[byte]
            ));
        }
    }
    Ok(trace)
}

// ---- little-endian view helpers shared by kernels and references ----

pub(crate) fn get_u32(buf: &[u8], idx: usize) -> u32 {
    u32::from_le_bytes(buf[idx * 4..idx * 4 + 4].try_into().expect("aligned u32"))
}

pub(crate) fn set_u32(buf: &mut [u8], idx: usize, v: u32) {
    buf[idx * 4..idx * 4 + 4].copy_from_slice(&v.to_le_bytes());
}

pub(crate) fn get_f32(buf: &[u8], idx: usize) -> f32 {
    f32::from_bits(get_u32(buf, idx))
}

pub(crate) fn set_f32(buf: &mut [u8], idx: usize, v: f32) {
    set_u32(buf, idx, v.to_bits());
}

pub(crate) fn get_u64(buf: &[u8], idx: usize) -> u64 {
    u64::from_le_bytes(buf[idx * 8..idx * 8 + 8].try_into().expect("aligned u64"))
}

pub(crate) fn set_u64(buf: &mut [u8], idx: usize, v: u64) {
    buf[idx * 8..idx * 8 + 8].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_matches_its_reference() {
        for bench in Benchmark::ALL {
            if let Err(e) = check_against_reference(bench, 0xC0FFEE) {
                panic!("{e}");
            }
        }
    }

    #[test]
    fn kernels_are_seed_sensitive_but_deterministic() {
        for bench in [Benchmark::Aes, Benchmark::SortMerge, Benchmark::SpmvCrs] {
            let a = init(bench, 1);
            let b = init(bench, 1);
            let c = init(bench, 2);
            assert_eq!(a, b, "{bench}: init must be deterministic");
            assert_ne!(a, c, "{bench}: init must depend on the seed");
        }
    }

    #[test]
    fn helpers_round_trip() {
        let mut buf = vec![0u8; 16];
        set_u32(&mut buf, 1, 0xdead_beef);
        assert_eq!(get_u32(&buf, 1), 0xdead_beef);
        set_f32(&mut buf, 2, -1.25);
        assert_eq!(get_f32(&buf, 2), -1.25);
        set_u64(&mut buf, 0, 42);
        assert_eq!(get_u64(&buf, 0), 42);
    }
}
