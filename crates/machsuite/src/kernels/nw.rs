//! `nw` — Needleman-Wunsch global sequence alignment.
//!
//! Two 128-symbol sequences, a full 129×129 integer DP matrix with
//! backtrack pointers (the Table 2 66564-byte buffers), and traceback into
//! gap-padded aligned outputs.

use super::{get_u32, set_u32};
use hetsim::{Engine, ExecFault};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const LEN: usize = 128;
const DIM: usize = LEN + 1;
const MATCH: i32 = 1;
const MISMATCH: i32 = -1;
const GAP: i32 = -1;
/// Gap marker in the aligned outputs.
const GAP_SYM: u32 = u32::MAX;
/// Backtrack pointer encoding.
const PTR_DIAG: u32 = 0;
const PTR_UP: u32 = 1;
const PTR_LEFT: u32 = 2;

pub(crate) fn init(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7711);
    let mut seq = || {
        let mut v = vec![0u8; LEN * 4];
        for i in 0..LEN {
            set_u32(&mut v, i, rng.gen_range(0..4));
        }
        v
    };
    let seq_a = seq();
    let seq_b = seq();
    let matrix = vec![0u8; DIM * DIM * 4];
    let back_ptr = vec![0u8; DIM * DIM * 4];
    let aligned = vec![0u8; (2 * LEN + 2) * 4];
    vec![seq_a, seq_b, matrix, back_ptr, aligned.clone(), aligned]
}

pub(crate) fn kernel(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    // Sequences fit comfortably in BRAM.
    let mut a = [0u32; LEN];
    let mut b = [0u32; LEN];
    for i in 0..LEN {
        a[i] = eng.load_u32(0, i as u64)?;
        b[i] = eng.load_u32(1, i as u64)?;
    }

    // Border initialisation.
    for j in 0..DIM as u64 {
        eng.store_i32(2, j, j as i32 * GAP)?;
        eng.store_u32(3, j, PTR_LEFT)?;
    }
    for i in 1..DIM as u64 {
        eng.store_i32(2, i * DIM as u64, i as i32 * GAP)?;
        eng.store_u32(3, i * DIM as u64, PTR_UP)?;
    }

    // DP with the previous row held in registers; the full matrix is still
    // written out (it is an output of the MachSuite kernel).
    let mut prev = [0i32; DIM];
    for (j, p) in prev.iter_mut().enumerate() {
        *p = j as i32 * GAP;
    }
    for i in 1..DIM {
        let mut left = i as i32 * GAP;
        for j in 1..DIM {
            eng.compute(6);
            let score = if a[i - 1] == b[j - 1] {
                MATCH
            } else {
                MISMATCH
            };
            let diag = prev[j - 1] + score;
            let up = prev[j] + GAP;
            let lft = left + GAP;
            let (best, ptr) = if diag >= up && diag >= lft {
                (diag, PTR_DIAG)
            } else if up >= lft {
                (up, PTR_UP)
            } else {
                (lft, PTR_LEFT)
            };
            eng.store_i32(2, (i * DIM + j) as u64, best)?;
            eng.store_u32(3, (i * DIM + j) as u64, ptr)?;
            prev[j - 1] = left;
            left = best;
        }
        prev[DIM - 1] = left;
    }

    // Traceback from (LEN, LEN).
    let (mut i, mut j) = (LEN, LEN);
    let mut out = Vec::with_capacity(2 * LEN);
    while i > 0 || j > 0 {
        let ptr = if i == 0 {
            PTR_LEFT
        } else if j == 0 {
            PTR_UP
        } else {
            eng.load_u32(3, (i * DIM + j) as u64)?
        };
        eng.compute(2);
        match ptr {
            PTR_DIAG => {
                out.push((a[i - 1], b[j - 1]));
                i -= 1;
                j -= 1;
            }
            PTR_UP => {
                out.push((a[i - 1], GAP_SYM));
                i -= 1;
            }
            _ => {
                out.push((GAP_SYM, b[j - 1]));
                j -= 1;
            }
        }
    }
    for (k, (ca, cb)) in out.iter().rev().enumerate() {
        eng.store_u32(4, k as u64, *ca)?;
        eng.store_u32(5, k as u64, *cb)?;
    }
    Ok(())
}

pub(crate) fn reference(bufs: &mut [Vec<u8>]) {
    let a: Vec<u32> = (0..LEN).map(|i| get_u32(&bufs[0], i)).collect();
    let b: Vec<u32> = (0..LEN).map(|i| get_u32(&bufs[1], i)).collect();
    for j in 0..DIM {
        set_u32(&mut bufs[2], j, (j as i32 * GAP) as u32);
        set_u32(&mut bufs[3], j, PTR_LEFT);
    }
    for i in 1..DIM {
        set_u32(&mut bufs[2], i * DIM, (i as i32 * GAP) as u32);
        set_u32(&mut bufs[3], i * DIM, PTR_UP);
    }
    for i in 1..DIM {
        for j in 1..DIM {
            let score = if a[i - 1] == b[j - 1] {
                MATCH
            } else {
                MISMATCH
            };
            let diag = get_u32(&bufs[2], (i - 1) * DIM + j - 1) as i32 + score;
            let up = get_u32(&bufs[2], (i - 1) * DIM + j) as i32 + GAP;
            let lft = get_u32(&bufs[2], i * DIM + j - 1) as i32 + GAP;
            let (best, ptr) = if diag >= up && diag >= lft {
                (diag, PTR_DIAG)
            } else if up >= lft {
                (up, PTR_UP)
            } else {
                (lft, PTR_LEFT)
            };
            set_u32(&mut bufs[2], i * DIM + j, best as u32);
            set_u32(&mut bufs[3], i * DIM + j, ptr);
        }
    }
    let (mut i, mut j) = (LEN, LEN);
    let mut out = Vec::new();
    while i > 0 || j > 0 {
        let ptr = if i == 0 {
            PTR_LEFT
        } else if j == 0 {
            PTR_UP
        } else {
            get_u32(&bufs[3], i * DIM + j)
        };
        match ptr {
            PTR_DIAG => {
                out.push((a[i - 1], b[j - 1]));
                i -= 1;
                j -= 1;
            }
            PTR_UP => {
                out.push((a[i - 1], GAP_SYM));
                i -= 1;
            }
            _ => {
                out.push((GAP_SYM, b[j - 1]));
                j -= 1;
            }
        }
    }
    for (k, (ca, cb)) in out.iter().rev().enumerate() {
        set_u32(&mut bufs[4], k, *ca);
        set_u32(&mut bufs[5], k, *cb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_align_without_gaps() {
        let mut bufs = init(3);
        bufs[1] = bufs[0].clone();
        reference(&mut bufs);
        // Score at the corner = LEN matches.
        assert_eq!(get_u32(&bufs[2], DIM * DIM - 1) as i32, LEN as i32 * MATCH);
        for k in 0..LEN {
            assert_eq!(get_u32(&bufs[4], k), get_u32(&bufs[5], k));
            assert_ne!(get_u32(&bufs[4], k), GAP_SYM);
        }
    }

    #[test]
    fn aligned_outputs_project_back_to_inputs() {
        let mut bufs = init(17);
        reference(&mut bufs);
        // Dropping gaps from aligned_a must reproduce seq_a (same for b).
        // The alignment length varies, so verify the projected prefix:
        let mut ai = 0usize;
        let mut bi = 0usize;
        for k in 0..2 * LEN + 2 {
            let ca = get_u32(&bufs[4], k);
            let cb = get_u32(&bufs[5], k);
            if ca == 0 && cb == 0 && ai == LEN && bi == LEN {
                break; // past the alignment
            }
            if ca != GAP_SYM && ai < LEN {
                assert_eq!(ca, get_u32(&bufs[0], ai), "aligned_a[{k}]");
                ai += 1;
            }
            if cb != GAP_SYM && bi < LEN {
                assert_eq!(cb, get_u32(&bufs[1], bi), "aligned_b[{k}]");
                bi += 1;
            }
        }
        assert_eq!((ai, bi), (LEN, LEN));
    }
}
