//! `sort_merge` / `sort_radix` — 2048-element u32 sorts.
//!
//! Both ping-pong between the data and temp buffers, exactly mirroring
//! the MachSuite structure: bottom-up merge (11 passes, finishing with a
//! bulk copy back) and LSD radix with 2-bit digits (16 passes, landing in
//! the data buffer).

use super::{get_u32, set_u32};
use hetsim::{Engine, ExecFault};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const N: usize = 2048;
const RADIX_BITS: u32 = 2;
const BUCKETS: usize = 1 << RADIX_BITS;
const PASSES: u32 = 32 / RADIX_BITS;

fn rand_data(seed: u64, salt: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed ^ salt);
    let mut v = vec![0u8; N * 4];
    for i in 0..N {
        set_u32(&mut v, i, rng.gen());
    }
    v
}

pub(crate) fn init_merge(seed: u64) -> Vec<Vec<u8>> {
    vec![rand_data(seed, 0x50f1), vec![0u8; N * 4]]
}

pub(crate) fn init_radix(seed: u64) -> Vec<Vec<u8>> {
    vec![
        rand_data(seed, 0x50f2),
        vec![0u8; N * 4],
        vec![0u8; 16],
        vec![0u8; 128],
    ]
}

pub(crate) fn kernel_merge(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    let mut src = 0usize; // object index of the current source
    let mut width = 1usize;
    while width < N {
        let dst = 1 - src;
        for lo in (0..N).step_by(2 * width) {
            let mid = (lo + width).min(N);
            let hi = (lo + 2 * width).min(N);
            let (mut i, mut j) = (lo, mid);
            for k in lo..hi {
                eng.compute(2);
                let take_left = if i >= mid {
                    false
                } else if j >= hi {
                    true
                } else {
                    let a = eng.load_u32(src, i as u64)?;
                    let b = eng.load_u32(src, j as u64)?;
                    a <= b
                };
                let v = if take_left {
                    let v = eng.load_u32(src, i as u64)?;
                    i += 1;
                    v
                } else {
                    let v = eng.load_u32(src, j as u64)?;
                    j += 1;
                    v
                };
                eng.store_u32(dst, k as u64, v)?;
            }
        }
        src = dst;
        width *= 2;
    }
    // 11 passes end with the sorted run in temp: burst it back.
    if src == 1 {
        eng.copy(0, 0, 1, 0, (N * 4) as u64)?;
    }
    Ok(())
}

pub(crate) fn reference_merge(bufs: &mut [Vec<u8>]) {
    let mut src = 0usize;
    let mut width = 1usize;
    while width < N {
        let dst = 1 - src;
        for lo in (0..N).step_by(2 * width) {
            let mid = (lo + width).min(N);
            let hi = (lo + 2 * width).min(N);
            let (mut i, mut j) = (lo, mid);
            for k in lo..hi {
                let take_left = if i >= mid {
                    false
                } else if j >= hi {
                    true
                } else {
                    get_u32(&bufs[src], i) <= get_u32(&bufs[src], j)
                };
                let v = if take_left {
                    let v = get_u32(&bufs[src], i);
                    i += 1;
                    v
                } else {
                    let v = get_u32(&bufs[src], j);
                    j += 1;
                    v
                };
                set_u32(&mut bufs[dst], k, v);
            }
        }
        src = dst;
        width *= 2;
    }
    if src == 1 {
        bufs[0] = bufs[1].clone();
    }
}

pub(crate) fn kernel_radix(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    let mut src = 0usize;
    for pass in 0..PASSES {
        let dst = 1 - src;
        let shift = pass * RADIX_BITS;
        // Histogram.
        let mut hist = [0u32; BUCKETS];
        for i in 0..N as u64 {
            let v = eng.load_u32(src, i)?;
            eng.compute(2);
            hist[((v >> shift) as usize) & (BUCKETS - 1)] += 1;
        }
        for (b, h) in hist.iter().enumerate() {
            eng.store_u32(2, b as u64, *h)?;
        }
        // Exclusive scan.
        let mut offs = [0u32; BUCKETS];
        for b in 1..BUCKETS {
            offs[b] = offs[b - 1] + hist[b - 1];
        }
        for (b, o) in offs.iter().enumerate() {
            eng.store_u32(3, b as u64, *o)?;
        }
        // Scatter.
        let mut cursor = offs;
        for i in 0..N as u64 {
            let v = eng.load_u32(src, i)?;
            eng.compute(2);
            let b = ((v >> shift) as usize) & (BUCKETS - 1);
            eng.store_u32(dst, u64::from(cursor[b]), v)?;
            cursor[b] += 1;
        }
        src = dst;
    }
    debug_assert_eq!(src, 0, "an even number of passes lands back in data");
    Ok(())
}

pub(crate) fn reference_radix(bufs: &mut [Vec<u8>]) {
    let mut src = 0usize;
    for pass in 0..PASSES {
        let dst = 1 - src;
        let shift = pass * RADIX_BITS;
        let mut hist = [0u32; BUCKETS];
        for i in 0..N {
            hist[((get_u32(&bufs[src], i) >> shift) as usize) & (BUCKETS - 1)] += 1;
        }
        for (b, h) in hist.iter().enumerate() {
            set_u32(&mut bufs[2], b, *h);
        }
        let mut offs = [0u32; BUCKETS];
        for b in 1..BUCKETS {
            offs[b] = offs[b - 1] + hist[b - 1];
        }
        for (b, o) in offs.iter().enumerate() {
            set_u32(&mut bufs[3], b, *o);
        }
        let mut cursor = offs;
        for i in 0..N {
            let v = get_u32(&bufs[src], i);
            let b = ((v >> shift) as usize) & (BUCKETS - 1);
            set_u32(&mut bufs[dst], cursor[b] as usize, v);
            cursor[b] += 1;
        }
        src = dst;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_sorted(buf: &[u8]) -> bool {
        (1..N).all(|i| get_u32(buf, i - 1) <= get_u32(buf, i))
    }

    #[test]
    fn merge_sorts() {
        let mut bufs = init_merge(8);
        reference_merge(&mut bufs);
        assert!(is_sorted(&bufs[0]));
    }

    #[test]
    fn radix_sorts() {
        let mut bufs = init_radix(8);
        reference_radix(&mut bufs);
        assert!(is_sorted(&bufs[0]));
    }

    #[test]
    fn sorts_are_permutations() {
        let mut bufs = init_merge(21);
        let mut orig: Vec<u32> = (0..N).map(|i| get_u32(&bufs[0], i)).collect();
        reference_merge(&mut bufs);
        let mut sorted: Vec<u32> = (0..N).map(|i| get_u32(&bufs[0], i)).collect();
        orig.sort_unstable();
        assert_eq!(orig, {
            sorted.sort_unstable();
            sorted
        });
    }

    #[test]
    fn radix_histogram_totals_n() {
        let mut bufs = init_radix(4);
        reference_radix(&mut bufs);
        let total: u32 = (0..BUCKETS).map(|b| get_u32(&bufs[2], b)).sum();
        assert_eq!(total, N as u32);
    }
}
