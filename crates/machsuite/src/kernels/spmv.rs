//! `spmv_crs` / `spmv_ellpack` — sparse matrix-vector multiply.
//!
//! A 494-row sparse matrix (1666 non-zeros CRS; 494×10 ELLPACK) times a
//! dense vector: the gather `x[col]` loads are data-dependent, making both
//! variants latency-sensitive on a cacheless accelerator.

use super::{get_f32, get_u32, set_f32, set_u32};
use hetsim::{Engine, ExecFault};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const ROWS: usize = 494;
const NNZ: usize = 1666;
const ELL_WIDTH: usize = 10;

pub(crate) fn init_crs(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5b51);
    let mut values = vec![0u8; NNZ * 4];
    let mut cols = vec![0u8; NNZ * 4];
    let mut row_ptr = vec![0u8; (ROWS + 1) * 4];
    // Distribute NNZ entries over rows: floor(nnz/rows) each plus the
    // remainder spread over the first rows.
    let base = NNZ / ROWS;
    let extra = NNZ % ROWS;
    let mut at = 0usize;
    for r in 0..ROWS {
        set_u32(&mut row_ptr, r, at as u32);
        let count = base + usize::from(r < extra);
        for _ in 0..count {
            set_f32(&mut values, at, rng.gen_range(-1.0f32..1.0));
            set_u32(&mut cols, at, rng.gen_range(0..ROWS as u32));
            at += 1;
        }
    }
    set_u32(&mut row_ptr, ROWS, at as u32);
    assert_eq!(at, NNZ);

    let mut x = vec![0u8; ROWS * 4];
    for i in 0..ROWS {
        set_f32(&mut x, i, rng.gen_range(-1.0f32..1.0));
    }
    let y = vec![0u8; ROWS * 4];
    vec![values, cols, row_ptr, x, y]
}

pub(crate) fn init_ellpack(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5b52);
    let mut nzval = vec![0u8; ROWS * ELL_WIDTH * 4];
    let mut cols = vec![0u8; ROWS * ELL_WIDTH * 4];
    for i in 0..ROWS * ELL_WIDTH {
        // A zero value models ELLPACK padding; ~30% of slots are padding.
        let v = if rng.gen_range(0..10) < 3 {
            0.0
        } else {
            rng.gen_range(-1.0f32..1.0)
        };
        set_f32(&mut nzval, i, v);
        set_u32(&mut cols, i, rng.gen_range(0..ROWS as u32));
    }
    let mut x = vec![0u8; ROWS * 4];
    for i in 0..ROWS {
        set_f32(&mut x, i, rng.gen_range(-1.0f32..1.0));
    }
    let y = vec![0u8; ROWS * 4];
    vec![nzval, cols, x, y]
}

/// Power-method iterations per invocation: y = A·x, then x ← y.
const ITERATIONS: usize = 4;

pub(crate) fn kernel_crs(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    for it in 0..ITERATIONS {
        if it > 0 {
            eng.copy(3, 0, 4, 0, ROWS as u64 * 4)?;
        }
        let mut begin = eng.load_u32(2, 0)? as u64;
        for r in 0..ROWS as u64 {
            let end = eng.load_u32(2, r + 1)? as u64;
            let mut acc = 0f32;
            for e in begin..end {
                let v = eng.load_f32(0, e)?;
                let c = eng.load_u32(1, e)? as u64;
                let xv = eng.load_f32(3, c)?;
                eng.compute(2);
                acc += v * xv;
            }
            eng.store_f32(4, r, acc)?;
            begin = end;
        }
    }
    Ok(())
}

pub(crate) fn reference_crs(bufs: &mut [Vec<u8>]) {
    for it in 0..ITERATIONS {
        if it > 0 {
            let y = bufs[4].clone();
            bufs[3] = y;
        }
        for r in 0..ROWS {
            let begin = get_u32(&bufs[2], r) as usize;
            let end = get_u32(&bufs[2], r + 1) as usize;
            let mut acc = 0f32;
            for e in begin..end {
                acc += get_f32(&bufs[0], e) * get_f32(&bufs[3], get_u32(&bufs[1], e) as usize);
            }
            set_f32(&mut bufs[4], r, acc);
        }
    }
}

pub(crate) fn kernel_ellpack(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    for it in 0..ITERATIONS {
        if it > 0 {
            eng.copy(2, 0, 3, 0, ROWS as u64 * 4)?;
        }
        for r in 0..ROWS as u64 {
            let mut acc = 0f32;
            for s in 0..ELL_WIDTH as u64 {
                let v = eng.load_f32(0, r * ELL_WIDTH as u64 + s)?;
                let c = eng.load_u32(1, r * ELL_WIDTH as u64 + s)? as u64;
                let xv = eng.load_f32(2, c)?;
                eng.compute(2);
                acc += v * xv;
            }
            eng.store_f32(3, r, acc)?;
        }
    }
    Ok(())
}

pub(crate) fn reference_ellpack(bufs: &mut [Vec<u8>]) {
    for it in 0..ITERATIONS {
        if it > 0 {
            let y = bufs[3].clone();
            bufs[2] = y;
        }
        for r in 0..ROWS {
            let mut acc = 0f32;
            for s in 0..ELL_WIDTH {
                let v = get_f32(&bufs[0], r * ELL_WIDTH + s);
                let c = get_u32(&bufs[1], r * ELL_WIDTH + s) as usize;
                acc += v * get_f32(&bufs[2], c);
            }
            set_f32(&mut bufs[3], r, acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crs_structure_is_valid() {
        let bufs = init_crs(6);
        assert_eq!(get_u32(&bufs[2], 0), 0);
        assert_eq!(get_u32(&bufs[2], ROWS), NNZ as u32);
        for r in 0..ROWS {
            assert!(get_u32(&bufs[2], r) <= get_u32(&bufs[2], r + 1));
        }
    }

    #[test]
    fn crs_matches_dense_multiply() {
        let mut bufs = init_crs(6);
        reference_crs(&mut bufs);
        // Re-derive y for a few rows by hand.
        for r in [0usize, 100, ROWS - 1] {
            let begin = get_u32(&bufs[2], r) as usize;
            let end = get_u32(&bufs[2], r + 1) as usize;
            let mut acc = 0f32;
            for e in begin..end {
                acc += get_f32(&bufs[0], e) * get_f32(&bufs[3], get_u32(&bufs[1], e) as usize);
            }
            assert_eq!(get_f32(&bufs[4], r), acc);
        }
    }

    #[test]
    fn ellpack_padding_contributes_nothing() {
        let mut bufs = init_ellpack(6);
        // Zero all values in row 7: its y must be exactly 0.
        for s in 0..ELL_WIDTH {
            set_f32(&mut bufs[0], 7 * ELL_WIDTH + s, 0.0);
        }
        reference_ellpack(&mut bufs);
        assert_eq!(get_f32(&bufs[3], 7), 0.0);
    }
}
