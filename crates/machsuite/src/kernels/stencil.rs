//! `stencil2d` / `stencil3d` — dense stencil sweeps.
//!
//! *2d*: a 3×3 convolution over a 64×128 grid; *3d*: a 7-point stencil
//! over 32×32×16 with boundary copy-through. Both stream every tap from
//! memory on the accelerator (no line cache), which is why stencil2d is
//! memory-bound in Figure 7.

use super::{get_f32, set_f32};
use hetsim::{Engine, ExecFault};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const ROWS_2D: usize = 64;
const COLS_2D: usize = 128;

const NX: usize = 32;
const NY: usize = 32;
const NZ: usize = 16;

pub(crate) fn init_2d(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x57e2);
    let mut filter = vec![0u8; 9 * 4];
    for i in 0..9 {
        set_f32(&mut filter, i, rng.gen_range(-1.0f32..1.0));
    }
    let mut orig = vec![0u8; ROWS_2D * COLS_2D * 4];
    for i in 0..ROWS_2D * COLS_2D {
        set_f32(&mut orig, i, rng.gen_range(0.0f32..1.0));
    }
    let sol = vec![0u8; ROWS_2D * COLS_2D * 4];
    vec![filter, orig, sol]
}

pub(crate) fn kernel_2d(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    let mut filter = [0f32; 9];
    for (i, f) in filter.iter_mut().enumerate() {
        *f = eng.load_f32(0, i as u64)?;
    }
    for r in 0..ROWS_2D - 2 {
        for c in 0..COLS_2D - 2 {
            let mut acc = 0f32;
            for k1 in 0..3 {
                for k2 in 0..3 {
                    let v = eng.load_f32(1, ((r + k1) * COLS_2D + c + k2) as u64)?;
                    eng.compute(2);
                    acc += filter[k1 * 3 + k2] * v;
                }
            }
            eng.store_f32(2, (r * COLS_2D + c) as u64, acc)?;
        }
    }
    Ok(())
}

pub(crate) fn reference_2d(bufs: &mut [Vec<u8>]) {
    let filter: Vec<f32> = (0..9).map(|i| get_f32(&bufs[0], i)).collect();
    for r in 0..ROWS_2D - 2 {
        for c in 0..COLS_2D - 2 {
            let mut acc = 0f32;
            for k1 in 0..3 {
                for k2 in 0..3 {
                    acc += filter[k1 * 3 + k2] * get_f32(&bufs[1], (r + k1) * COLS_2D + c + k2);
                }
            }
            set_f32(&mut bufs[2], r * COLS_2D + c, acc);
        }
    }
}

pub(crate) fn init_3d(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x57e3);
    let mut coeffs = vec![0u8; 8];
    set_f32(&mut coeffs, 0, rng.gen_range(0.0f32..2.0));
    set_f32(&mut coeffs, 1, rng.gen_range(0.0f32..0.5));
    let mut orig = vec![0u8; NX * NY * NZ * 4];
    for i in 0..NX * NY * NZ {
        set_f32(&mut orig, i, rng.gen_range(0.0f32..1.0));
    }
    let sol = vec![0u8; NX * NY * NZ * 4];
    vec![coeffs, orig, sol]
}

fn idx3(x: usize, y: usize, z: usize) -> usize {
    (x * NY + y) * NZ + z
}

pub(crate) fn kernel_3d(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    let c0 = eng.load_f32(0, 0)?;
    let c1 = eng.load_f32(0, 1)?;
    // Boundary copy-through (the MachSuite idiom).
    for x in 0..NX {
        for y in 0..NY {
            for z in 0..NZ {
                let boundary =
                    x == 0 || x == NX - 1 || y == 0 || y == NY - 1 || z == 0 || z == NZ - 1;
                if boundary {
                    let v = eng.load_f32(1, idx3(x, y, z) as u64)?;
                    eng.store_f32(2, idx3(x, y, z) as u64, v)?;
                }
            }
        }
    }
    for x in 1..NX - 1 {
        for y in 1..NY - 1 {
            for z in 1..NZ - 1 {
                let center = eng.load_f32(1, idx3(x, y, z) as u64)?;
                let mut sum = 0f32;
                for (dx, dy, dz) in [
                    (1i32, 0i32, 0i32),
                    (-1, 0, 0),
                    (0, 1, 0),
                    (0, -1, 0),
                    (0, 0, 1),
                    (0, 0, -1),
                ] {
                    let n = idx3(
                        (x as i32 + dx) as usize,
                        (y as i32 + dy) as usize,
                        (z as i32 + dz) as usize,
                    );
                    sum += eng.load_f32(1, n as u64)?;
                }
                eng.compute(10);
                eng.store_f32(2, idx3(x, y, z) as u64, c0 * center + c1 * sum)?;
            }
        }
    }
    Ok(())
}

pub(crate) fn reference_3d(bufs: &mut [Vec<u8>]) {
    let c0 = get_f32(&bufs[0], 0);
    let c1 = get_f32(&bufs[0], 1);
    for x in 0..NX {
        for y in 0..NY {
            for z in 0..NZ {
                let boundary =
                    x == 0 || x == NX - 1 || y == 0 || y == NY - 1 || z == 0 || z == NZ - 1;
                if boundary {
                    let v = get_f32(&bufs[1], idx3(x, y, z));
                    set_f32(&mut bufs[2], idx3(x, y, z), v);
                }
            }
        }
    }
    for x in 1..NX - 1 {
        for y in 1..NY - 1 {
            for z in 1..NZ - 1 {
                let center = get_f32(&bufs[1], idx3(x, y, z));
                let mut sum = 0f32;
                for (dx, dy, dz) in [
                    (1i32, 0i32, 0i32),
                    (-1, 0, 0),
                    (0, 1, 0),
                    (0, -1, 0),
                    (0, 0, 1),
                    (0, 0, -1),
                ] {
                    sum += get_f32(
                        &bufs[1],
                        idx3(
                            (x as i32 + dx) as usize,
                            (y as i32 + dy) as usize,
                            (z as i32 + dz) as usize,
                        ),
                    );
                }
                set_f32(&mut bufs[2], idx3(x, y, z), c0 * center + c1 * sum);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_filter_reproduces_input_region() {
        let mut bufs = init_2d(9);
        // Filter = delta at the top-left tap.
        for i in 0..9 {
            set_f32(&mut bufs[0], i, if i == 0 { 1.0 } else { 0.0 });
        }
        reference_2d(&mut bufs);
        for r in 0..ROWS_2D - 2 {
            for c in 0..COLS_2D - 2 {
                assert_eq!(
                    get_f32(&bufs[2], r * COLS_2D + c),
                    get_f32(&bufs[1], r * COLS_2D + c)
                );
            }
        }
    }

    #[test]
    fn stencil3d_boundary_is_copied() {
        let mut bufs = init_3d(9);
        reference_3d(&mut bufs);
        assert_eq!(
            get_f32(&bufs[2], idx3(0, 5, 5)),
            get_f32(&bufs[1], idx3(0, 5, 5))
        );
        assert_eq!(
            get_f32(&bufs[2], idx3(NX - 1, 0, NZ - 1)),
            get_f32(&bufs[1], idx3(NX - 1, 0, NZ - 1))
        );
    }

    #[test]
    fn stencil3d_interior_uses_coefficients() {
        let mut bufs = init_3d(9);
        // c0 = 1, c1 = 0 makes the interior a copy too.
        set_f32(&mut bufs[0], 0, 1.0);
        set_f32(&mut bufs[0], 1, 0.0);
        reference_3d(&mut bufs);
        assert_eq!(
            get_f32(&bufs[2], idx3(5, 5, 5)),
            get_f32(&bufs[1], idx3(5, 5, 5))
        );
    }
}
