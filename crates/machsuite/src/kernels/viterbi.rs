//! `viterbi` — Viterbi decoding over a 64-state HMM, 64 observations.
//!
//! Log-space probabilities; the transition and emission matrices stream
//! into BRAM once, then the 64×64×64 trellis is pure compute — the other
//! four-digit-speedup benchmark alongside backprop.

#[cfg(test)]
use super::get_u64;
use super::{get_f32, get_u32, set_f32, set_u32, set_u64};
use hetsim::{Engine, ExecFault};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const STATES: usize = 64;
const STEPS: usize = 64;
/// Work units per trellis edge (add + compare + select).
const EDGE_UNITS: u64 = 4;
/// Sequences decoded per invocation (the model stays in BRAM; each pass
/// decodes the observation window rotated by one step).
const PASSES: usize = 8;

pub(crate) fn init(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x71b1);
    let mut logp = |n: usize| {
        let mut v = vec![0u8; n * 4];
        for i in 0..n {
            // Negative log-likelihoods.
            set_f32(&mut v, i, rng.gen_range(0.1f32..8.0));
        }
        v
    };
    let init_probs = logp(STATES);
    let transition = logp(STATES * STATES);
    let emission = logp(STATES * STATES);
    let mut obs = vec![0u8; STEPS * 4];
    for t in 0..STEPS {
        set_u32(&mut obs, t, rng.gen_range(0..STATES as u32));
    }
    let path = vec![0u8; STEPS * 8];
    vec![init_probs, transition, emission, obs, path]
}

struct Model {
    init: [f32; STATES],
    transition: Vec<f32>,
    emission: Vec<f32>,
    obs: [u32; STEPS],
}

/// Min-cost (negative-log) Viterbi over the observation window rotated by
/// `rot`; shared by kernel and reference.
fn decode(m: &Model, rot: usize) -> [u64; STEPS] {
    let obs = |t: usize| m.obs[(t + rot) % STEPS] as usize;
    let mut llike = [[0f32; STATES]; STEPS];
    let mut psi = vec![[0u8; STATES]; STEPS];
    for s in 0..STATES {
        llike[0][s] = m.init[s] + m.emission[s * STATES + obs(0)];
    }
    for t in 1..STEPS {
        for cur in 0..STATES {
            let mut best = f32::INFINITY;
            let mut arg = 0u8;
            for prev in 0..STATES {
                let cost = llike[t - 1][prev]
                    + m.transition[prev * STATES + cur]
                    + m.emission[cur * STATES + obs(t)];
                if cost < best {
                    best = cost;
                    arg = prev as u8;
                }
            }
            llike[t][cur] = best;
            psi[t][cur] = arg;
        }
    }
    let mut path = [0u64; STEPS];
    let mut state = (0..STATES)
        .min_by(|a, b| {
            llike[STEPS - 1][*a]
                .partial_cmp(&llike[STEPS - 1][*b])
                .expect("finite")
        })
        .expect("states exist");
    path[STEPS - 1] = state as u64;
    for t in (1..STEPS).rev() {
        state = psi[t][state] as usize;
        path[t - 1] = state as u64;
    }
    path
}

pub(crate) fn kernel(eng: &mut dyn Engine) -> Result<(), ExecFault> {
    let mut m = Model {
        init: [0.0; STATES],
        transition: vec![0.0; STATES * STATES],
        emission: vec![0.0; STATES * STATES],
        obs: [0; STEPS],
    };
    for (s, v) in m.init.iter_mut().enumerate() {
        *v = eng.load_f32(0, s as u64)?;
    }
    for i in 0..STATES * STATES {
        m.transition[i] = eng.load_f32(1, i as u64)?;
    }
    for i in 0..STATES * STATES {
        m.emission[i] = eng.load_f32(2, i as u64)?;
    }
    for (t, o) in m.obs.iter_mut().enumerate() {
        *o = eng.load_u32(3, t as u64)?;
    }
    for pass in 0..PASSES {
        eng.compute((STEPS as u64 - 1) * (STATES as u64) * (STATES as u64) * EDGE_UNITS);
        let path = decode(&m, pass);
        for (t, p) in path.iter().enumerate() {
            eng.store_u64(4, t as u64, *p)?;
        }
    }
    Ok(())
}

pub(crate) fn reference(bufs: &mut [Vec<u8>]) {
    let mut m = Model {
        init: [0.0; STATES],
        transition: vec![0.0; STATES * STATES],
        emission: vec![0.0; STATES * STATES],
        obs: [0; STEPS],
    };
    for s in 0..STATES {
        m.init[s] = get_f32(&bufs[0], s);
    }
    for i in 0..STATES * STATES {
        m.transition[i] = get_f32(&bufs[1], i);
        m.emission[i] = get_f32(&bufs[2], i);
    }
    for t in 0..STEPS {
        m.obs[t] = get_u32(&bufs[3], t);
    }
    for pass in 0..PASSES {
        let path = decode(&m, pass);
        for (t, p) in path.iter().enumerate() {
            set_u64(&mut bufs[4], t, *p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoded_path_is_within_states() {
        let mut bufs = init(12);
        reference(&mut bufs);
        for t in 0..STEPS {
            assert!(get_u64(&bufs[4], t) < STATES as u64);
        }
    }

    #[test]
    fn forced_chain_is_recovered() {
        // Free transitions s -> s+1, everything else expensive, emissions
        // flat: the decoder must follow the chain from state 0 regardless
        // of the observation window.
        let mut bufs = init(12);
        for i in 0..STATES * STATES {
            set_f32(&mut bufs[1], i, 100.0);
            set_f32(&mut bufs[2], i, 0.0);
        }
        for s in 0..STATES {
            set_f32(&mut bufs[0], s, if s == 0 { 0.0 } else { 1000.0 });
            set_f32(&mut bufs[1], s * STATES + (s + 1) % STATES, 0.0);
        }
        reference(&mut bufs);
        for t in 0..STEPS {
            assert_eq!(get_u64(&bufs[4], t), (t % STATES) as u64, "step {t}");
        }
    }
}
