//! # machsuite — the MachSuite accelerator benchmarks
//!
//! All 19 benchmarks of MachSuite (Reagen et al., IISWC'14) — the
//! evaluation workload of the paper — implemented as functional kernels
//! against the [`hetsim::Engine`] abstraction, so the same code runs on
//! the CPU model, an unprotected accelerator, or an accelerator behind the
//! CapChecker or any baseline mechanism.
//!
//! Each benchmark provides:
//!
//! * a **buffer specification** per accelerator instance, reproducing the
//!   buffer counts and min/max sizes of Table 2 exactly (8 instances,
//!   verified by tests);
//! * a deterministic **input generator** (seeded);
//! * the **kernel** itself, emitting loads/stores/computes through the
//!   engine;
//! * a pure-Rust **reference** implementation, so every kernel's output is
//!   checked bit-for-bit;
//! * an **HLS profile** ([`KernelProfile`]): the structural timing
//!   parameters a high-level-synthesis flow would fix (datapath lanes,
//!   pipelining, outstanding requests, and the scalar CPU's cost per work
//!   unit), calibrated to reproduce the paper's speedup bands (Figure 7).
//!
//! # Examples
//!
//! ```
//! use machsuite::Benchmark;
//! use hetsim::{DirectEngine, TaggedMemory};
//!
//! # fn main() -> Result<(), hetsim::ExecFault> {
//! let bench = Benchmark::GemmNcubed;
//! let mut mem = TaggedMemory::new(1 << 20);
//! let layout = bench.place(0x1000);
//! for (i, data) in bench.init(42).iter().enumerate() {
//!     mem.write_bytes(layout.buffers[i].base, data).unwrap();
//! }
//! let mut eng = DirectEngine::new(&mut mem, layout);
//! bench.kernel(&mut eng)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod accel;
pub mod kernels;
pub mod ports;
pub mod stats;
mod workload;

pub use accel::KernelProfile;
pub use ports::PortMode;
pub use stats::WorkloadStats;
pub use workload::{BufferDef, Table2Row, INSTANCES};

use hetsim::{Engine, ExecFault, TaskLayout};
use std::fmt;
use std::str::FromStr;

/// One MachSuite benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Benchmark {
    Aes,
    Backprop,
    BfsBulk,
    BfsQueue,
    FftStrided,
    FftTranspose,
    GemmBlocked,
    GemmNcubed,
    Kmp,
    MdGrid,
    MdKnn,
    Nw,
    SortMerge,
    SortRadix,
    SpmvCrs,
    SpmvEllpack,
    Stencil2d,
    Stencil3d,
    Viterbi,
}

impl Benchmark {
    /// All 19 benchmarks, in Table 2's order.
    pub const ALL: [Benchmark; 19] = [
        Benchmark::Aes,
        Benchmark::Backprop,
        Benchmark::BfsBulk,
        Benchmark::BfsQueue,
        Benchmark::FftStrided,
        Benchmark::FftTranspose,
        Benchmark::GemmBlocked,
        Benchmark::GemmNcubed,
        Benchmark::Kmp,
        Benchmark::MdGrid,
        Benchmark::MdKnn,
        Benchmark::Nw,
        Benchmark::SortMerge,
        Benchmark::SortRadix,
        Benchmark::SpmvCrs,
        Benchmark::SpmvEllpack,
        Benchmark::Stencil2d,
        Benchmark::Stencil3d,
        Benchmark::Viterbi,
    ];

    /// The benchmark's MachSuite name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Aes => "aes",
            Benchmark::Backprop => "backprop",
            Benchmark::BfsBulk => "bfs_bulk",
            Benchmark::BfsQueue => "bfs_queue",
            Benchmark::FftStrided => "fft_strided",
            Benchmark::FftTranspose => "fft_transpose",
            Benchmark::GemmBlocked => "gemm_blocked",
            Benchmark::GemmNcubed => "gemm_ncubed",
            Benchmark::Kmp => "kmp",
            Benchmark::MdGrid => "md_grid",
            Benchmark::MdKnn => "md_knn",
            Benchmark::Nw => "nw",
            Benchmark::SortMerge => "sort_merge",
            Benchmark::SortRadix => "sort_radix",
            Benchmark::SpmvCrs => "spmv_crs",
            Benchmark::SpmvEllpack => "spmv_ellpack",
            Benchmark::Stencil2d => "stencil2d",
            Benchmark::Stencil3d => "stencil3d",
            Benchmark::Viterbi => "viterbi",
        }
    }

    /// Per-instance buffer definitions (name and size).
    #[must_use]
    pub fn buffers(self) -> &'static [BufferDef] {
        workload::buffers(self)
    }

    /// Deterministic initial contents for each buffer.
    #[must_use]
    pub fn init(self, seed: u64) -> Vec<Vec<u8>> {
        kernels::init(self, seed)
    }

    /// Runs the kernel against an engine.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ExecFault`] (a protection denial aborts the
    /// task, as in hardware).
    pub fn kernel(self, eng: &mut dyn Engine) -> Result<(), ExecFault> {
        kernels::run(self, eng)
    }

    /// Applies the golden reference to in-memory buffer images.
    pub fn reference(self, bufs: &mut [Vec<u8>]) {
        kernels::reference(self, bufs);
    }

    /// The HLS timing profile.
    #[must_use]
    pub fn profile(self) -> KernelProfile {
        accel::profile(self)
    }

    /// The Table 2 row for this benchmark (8 instances).
    #[must_use]
    pub fn table2_row(self) -> Table2Row {
        workload::table2_row(self)
    }

    /// A contiguous (test-friendly) placement of one instance's buffers
    /// starting at `base`, 64-byte aligned.
    #[must_use]
    pub fn place(self, base: u64) -> TaskLayout {
        let mut at = base;
        TaskLayout::new(self.buffers().iter().map(|b| {
            let this = at;
            at = (at + b.size).next_multiple_of(64);
            (this, b.size)
        }))
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a benchmark name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBenchmarkError(String);

impl fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown benchmark {:?}", self.0)
    }
}

impl std::error::Error for ParseBenchmarkError {}

impl FromStr for Benchmark {
    type Err = ParseBenchmarkError;

    fn from_str(s: &str) -> Result<Benchmark, ParseBenchmarkError> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name() == s)
            .ok_or_else(|| ParseBenchmarkError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(b.name().parse::<Benchmark>().unwrap(), b);
        }
        assert!("nope".parse::<Benchmark>().is_err());
    }

    #[test]
    fn placement_is_disjoint_and_ordered() {
        for b in Benchmark::ALL {
            let layout = b.place(0x1000);
            for w in layout.buffers.windows(2) {
                assert!(w[0].end() <= w[1].base, "{b}: overlapping placement");
            }
        }
    }
}
