//! Declared per-port access directions — the static contract between a
//! kernel and its buffers.
//!
//! An HLS flow knows, at synthesis time, which direction each top-level
//! port moves data: an input array is only ever read, an output array
//! only written. This module declares that contract for every MachSuite
//! kernel. The static analyzer turns it into least-privilege capability
//! grants (an `In` port needs only LOAD) and flags grants that exceed it
//! as over-privileged; the declaration is intentionally independent of
//! any particular input, so a seed that happens not to exercise a
//! direction never shrinks the contract.
//!
//! A test replays every kernel through [`hetsim::DirectEngine`] over
//! several seeds and checks the observed traffic is exactly the declared
//! set: no kernel touches a port outside its declaration (soundness), and
//! no declaration is wider than the kernels' union of use (tightness).

use crate::Benchmark;

/// The direction a kernel moves data through one buffer port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PortMode {
    /// Read only: the port needs LOAD and nothing else.
    In,
    /// Written only: the port needs STORE and nothing else.
    Out,
    /// Read and written: the port needs LOAD and STORE.
    InOut,
    /// Never accessed by the kernel (scaffolding the reference uses);
    /// a least-privilege grant carries no data permissions at all.
    Unused,
}

impl PortMode {
    /// Stable lowercase label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PortMode::In => "in",
            PortMode::Out => "out",
            PortMode::InOut => "inout",
            PortMode::Unused => "unused",
        }
    }

    /// `true` when the kernel may read through the port.
    #[must_use]
    pub fn reads(self) -> bool {
        matches!(self, PortMode::In | PortMode::InOut)
    }

    /// `true` when the kernel may write through the port.
    #[must_use]
    pub fn writes(self) -> bool {
        matches!(self, PortMode::Out | PortMode::InOut)
    }
}

/// The declared port modes of `bench`, in buffer order (same order as
/// [`Benchmark::buffers`]).
#[must_use]
pub fn ports(bench: Benchmark) -> &'static [PortMode] {
    use PortMode::{In, InOut, Out, Unused};
    match bench {
        // block
        Benchmark::Aes => &[InOut],
        // hyper, w1, w2, b1, b2, train_x, train_y
        Benchmark::Backprop => &[In, InOut, InOut, InOut, InOut, In, In],
        // params, nodes, edges, level, level_counts
        Benchmark::BfsBulk | Benchmark::BfsQueue => &[In, In, In, InOut, Out],
        // real, imag, real_twid, imag_twid, work_real, work_imag
        Benchmark::FftStrided => &[InOut, InOut, In, In, InOut, InOut],
        // real, imag
        Benchmark::FftTranspose => &[InOut, InOut],
        // a, b, c
        Benchmark::GemmBlocked => &[In, In, InOut],
        Benchmark::GemmNcubed => &[In, In, Out],
        // pattern, next, text, n_matches
        Benchmark::Kmp => &[In, Out, In, Out],
        // bin_counts, bin_atoms, position, force, vel_x, vel_y, vel_z
        Benchmark::MdGrid => &[In, In, In, Out, Unused, Unused, Unused],
        // params, pos_x, pos_y, pos_z, neighbors, force, energy
        Benchmark::MdKnn => &[In, In, In, In, In, Out, Out],
        // seq_a, seq_b, matrix, back_ptr, aligned_a, aligned_b
        Benchmark::Nw => &[In, In, Out, InOut, Out, Out],
        // data, temp
        Benchmark::SortMerge => &[InOut, InOut],
        // data, temp, bucket, scan
        Benchmark::SortRadix => &[InOut, InOut, Out, Out],
        // values, cols, row_ptr, x, y
        Benchmark::SpmvCrs => &[In, In, In, InOut, InOut],
        // nzval, cols, x, y
        Benchmark::SpmvEllpack => &[In, In, InOut, InOut],
        // filter/coeffs, orig, sol
        Benchmark::Stencil2d | Benchmark::Stencil3d => &[In, In, Out],
        // init, transition, emission, obs, path
        Benchmark::Viterbi => &[In, In, In, In, Out],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::{DirectEngine, TaggedMemory, TraceOp};

    /// Per-port (reads, writes) actually performed by one kernel run.
    fn observed(bench: Benchmark, seed: u64) -> Vec<(bool, bool)> {
        let layout = bench.place(0x10000);
        let mut mem = TaggedMemory::new(8 << 20);
        for (i, img) in bench.init(seed).iter().enumerate() {
            mem.write_bytes(layout.address(i, 0), img).unwrap();
        }
        let mut eng = DirectEngine::new(&mut mem, layout.clone());
        bench.kernel(&mut eng).unwrap();
        let mut modes = vec![(false, false); bench.buffers().len()];
        let resolve = |addr: u64| {
            layout
                .buffers
                .iter()
                .position(|r| addr >= r.base && addr < r.end())
        };
        for op in eng.trace().ops() {
            match op {
                TraceOp::Mem { write, object, .. } => {
                    if *write {
                        modes[*object as usize].1 = true;
                    } else {
                        modes[*object as usize].0 = true;
                    }
                }
                TraceOp::Copy { src, dst, .. } => {
                    if let Some(o) = resolve(*src) {
                        modes[o].0 = true;
                    }
                    if let Some(o) = resolve(*dst) {
                        modes[o].1 = true;
                    }
                }
                TraceOp::Compute(_) => {}
            }
        }
        modes
    }

    #[test]
    fn every_benchmark_declares_every_port() {
        for b in Benchmark::ALL {
            assert_eq!(
                ports(b).len(),
                b.buffers().len(),
                "{b}: one mode per buffer"
            );
        }
    }

    #[test]
    fn declared_ports_are_sound_and_tight() {
        const SEEDS: [u64; 3] = [1, 2, 3];
        for b in Benchmark::ALL {
            let declared = ports(b);
            let mut union = vec![(false, false); declared.len()];
            for seed in SEEDS {
                for (i, &(r, w)) in observed(b, seed).iter().enumerate() {
                    let port = b.buffers()[i].name;
                    // Soundness: no traffic outside the declaration.
                    assert!(
                        !r || declared[i].reads(),
                        "{b}/{port}: undeclared read (seed {seed})"
                    );
                    assert!(
                        !w || declared[i].writes(),
                        "{b}/{port}: undeclared write (seed {seed})"
                    );
                    union[i].0 |= r;
                    union[i].1 |= w;
                }
            }
            // Tightness: the declaration is exactly the union of use, so
            // least-privilege grants are as narrow as the kernels allow.
            for (i, &(r, w)) in union.iter().enumerate() {
                let port = b.buffers()[i].name;
                assert_eq!(r, declared[i].reads(), "{b}/{port}: read over-declared");
                assert_eq!(w, declared[i].writes(), "{b}/{port}: write over-declared");
            }
        }
    }

    #[test]
    fn labels_and_directions_are_stable() {
        assert_eq!(PortMode::In.label(), "in");
        assert_eq!(PortMode::Out.label(), "out");
        assert_eq!(PortMode::InOut.label(), "inout");
        assert_eq!(PortMode::Unused.label(), "unused");
        assert!(PortMode::In.reads() && !PortMode::In.writes());
        assert!(!PortMode::Out.reads() && PortMode::Out.writes());
        assert!(PortMode::InOut.reads() && PortMode::InOut.writes());
        assert!(!PortMode::Unused.reads() && !PortMode::Unused.writes());
    }
}
