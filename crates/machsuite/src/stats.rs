//! Workload characterization: what each benchmark actually does on the
//! memory interface.
//!
//! This is the quantitative backing for the calibration story in
//! `accel.rs` — arithmetic intensity decides who accelerates (Figure 7)
//! and read/write mix decides what the CapChecker sees.

use crate::kernels::check_against_reference;
use crate::Benchmark;
use hetsim::{Trace, TraceOp};
use obs::{MetricSource, Registry};

/// Summary of one benchmark's operation stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadStats {
    /// Benchmark.
    pub bench: Benchmark,
    /// Discrete memory operations (copies count once).
    pub mem_ops: u64,
    /// Bytes moved (copies count both directions).
    pub mem_bytes: u64,
    /// Data-path work units.
    pub compute_units: u64,
    /// Store fraction of the discrete memory operations.
    pub write_fraction: f64,
    /// Bulk-copy bytes (the CHERI-CPU capability-copy opportunity).
    pub copy_bytes: u64,
    /// Work units per byte moved — the roofline x-axis.
    pub arithmetic_intensity: f64,
}

impl MetricSource for WorkloadStats {
    fn export_metrics(&self, registry: &mut Registry, prefix: &str) {
        registry.counter_add(format!("{prefix}mem_ops"), self.mem_ops);
        registry.counter_add(format!("{prefix}mem_bytes"), self.mem_bytes);
        registry.counter_add(format!("{prefix}compute_units"), self.compute_units);
        registry.counter_add(format!("{prefix}copy_bytes"), self.copy_bytes);
        registry.gauge_set(format!("{prefix}write_fraction"), self.write_fraction);
        registry.gauge_set(
            format!("{prefix}arithmetic_intensity"),
            self.arithmetic_intensity,
        );
    }
}

/// Characterizes `bench` by running it (and, as a side effect, verifying
/// it against its golden reference).
///
/// # Panics
///
/// Panics if the kernel diverges from its reference — the same invariant
/// the test suite enforces.
#[must_use]
pub fn characterize(bench: Benchmark, seed: u64) -> WorkloadStats {
    let trace = check_against_reference(bench, seed)
        .unwrap_or_else(|e| panic!("characterization found a divergence: {e}"));
    of_trace(bench, &trace)
}

/// Computes the summary from an existing trace.
#[must_use]
pub fn of_trace(bench: Benchmark, trace: &Trace) -> WorkloadStats {
    let mut writes = 0u64;
    let mut copy_bytes = 0u64;
    for op in trace.ops() {
        match op {
            TraceOp::Mem { write: true, .. } => writes += 1,
            TraceOp::Copy { bytes, .. } => copy_bytes += bytes,
            _ => {}
        }
    }
    let mem_ops = trace.mem_ops();
    let mem_bytes = trace.mem_bytes();
    WorkloadStats {
        bench,
        mem_ops,
        mem_bytes,
        compute_units: trace.compute_units(),
        write_fraction: if mem_ops == 0 {
            0.0
        } else {
            writes as f64 / mem_ops as f64
        },
        copy_bytes,
        arithmetic_intensity: trace.compute_units() as f64 / mem_bytes.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_separates_the_figure7_bands() {
        // The four-digit-speedup benchmarks are an order of magnitude more
        // compute-intense than the memory-bound ones.
        let viterbi = characterize(Benchmark::Viterbi, 1).arithmetic_intensity;
        let backprop = characterize(Benchmark::Backprop, 1).arithmetic_intensity;
        let knn = characterize(Benchmark::MdKnn, 1).arithmetic_intensity;
        let bfs = characterize(Benchmark::BfsBulk, 1).arithmetic_intensity;
        assert!(viterbi > 50.0, "viterbi: {viterbi}");
        assert!(backprop > 50.0, "backprop: {backprop}");
        assert!(knn < 2.0, "md_knn: {knn}");
        assert!(bfs < 2.0, "bfs_bulk: {bfs}");
    }

    #[test]
    fn gemm_blocked_is_the_copy_heavy_one() {
        let blocked = characterize(Benchmark::GemmBlocked, 1);
        let ncubed = characterize(Benchmark::GemmNcubed, 1);
        assert!(blocked.copy_bytes > 100_000, "{}", blocked.copy_bytes);
        assert_eq!(ncubed.copy_bytes, 0);
        // Packing slashes the discrete loads by an order of magnitude.
        assert!(blocked.mem_ops * 5 < ncubed.mem_ops);
    }

    #[test]
    fn sorts_write_roughly_as_much_as_they_read() {
        let s = characterize(Benchmark::SortRadix, 1);
        assert!(
            s.write_fraction > 0.3 && s.write_fraction < 0.7,
            "{}",
            s.write_fraction
        );
    }

    #[test]
    fn every_benchmark_characterizes() {
        for b in Benchmark::ALL {
            let s = characterize(b, 2);
            assert!(s.mem_ops > 0, "{b}");
            assert!(s.compute_units > 0, "{b}");
        }
    }
}
