//! Buffer specifications reproducing Table 2.
//!
//! Each benchmark runs with **eight accelerator instances** (independent
//! users); the table's *buffer count* is the total across instances, and
//! the min/max are over the per-instance buffer sizes. The CapChecker has
//! 256 entries, which comfortably holds every row.

use crate::Benchmark;

/// Accelerator instances per benchmark (Table 2: "the accelerator has
/// eight instances").
pub const INSTANCES: usize = 8;

/// One buffer of a benchmark instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BufferDef {
    /// Role of the buffer in the kernel.
    pub name: &'static str,
    /// Size in bytes.
    pub size: u64,
}

/// Declares a `'static` buffer list.
macro_rules! bufs {
    ($($name:literal : $size:literal),* $(,)?) => {{
        const LIST: &[BufferDef] = &[$(BufferDef { name: $name, size: $size }),*];
        LIST
    }};
}

/// Per-instance buffers for `bench`.
#[must_use]
pub fn buffers(bench: Benchmark) -> &'static [BufferDef] {
    match bench {
        Benchmark::Aes => bufs!["block": 128],
        Benchmark::Backprop => bufs![
            "hyper": 12,
            "w1": 512,
            "w2": 1024,
            "b1": 128,
            "b2": 32,
            "train_x": 10432,
            "train_y": 2608,
        ],
        Benchmark::BfsBulk | Benchmark::BfsQueue => bufs![
            "params": 40,
            "nodes": 4096,
            "edges": 16384,
            "level": 2048,
            "level_counts": 512,
        ],
        Benchmark::FftStrided => bufs![
            "real": 4096,
            "imag": 4096,
            "real_twid": 4096,
            "imag_twid": 4096,
            "work_real": 4096,
            "work_imag": 4096,
        ],
        Benchmark::FftTranspose => bufs!["real": 2048, "imag": 2048],
        Benchmark::GemmBlocked | Benchmark::GemmNcubed => {
            bufs!["a": 16384, "b": 16384, "c": 16384]
        }
        Benchmark::Kmp => bufs!["pattern": 4, "next": 16, "text": 64824, "n_matches": 8],
        Benchmark::MdGrid => bufs![
            "bin_counts": 256,
            "bin_atoms": 2560,
            "position": 2560,
            "force": 2560,
            "vel_x": 640,
            "vel_y": 640,
            "vel_z": 640,
        ],
        Benchmark::MdKnn => bufs![
            "params": 1024,
            "pos_x": 4096,
            "pos_y": 4096,
            "pos_z": 4096,
            "neighbors": 16384,
            "force": 4096,
            "energy": 4096,
        ],
        Benchmark::Nw => bufs![
            "seq_a": 512,
            "seq_b": 512,
            "matrix": 66564,
            "back_ptr": 66564,
            "aligned_a": 1032,
            "aligned_b": 1032,
        ],
        Benchmark::SortMerge => bufs!["data": 8192, "temp": 8192],
        Benchmark::SortRadix => bufs!["data": 8192, "temp": 8192, "bucket": 16, "scan": 128],
        Benchmark::SpmvCrs => bufs![
            "values": 6664,
            "cols": 6664,
            "row_ptr": 1980,
            "x": 1976,
            "y": 1976,
        ],
        Benchmark::SpmvEllpack => bufs!["nzval": 19760, "cols": 19760, "x": 1976, "y": 1976],
        Benchmark::Stencil2d => bufs!["filter": 36, "orig": 32768, "sol": 32768],
        Benchmark::Stencil3d => bufs!["coeffs": 8, "orig": 65536, "sol": 65536],
        Benchmark::Viterbi => bufs![
            "init": 256,
            "transition": 16384,
            "emission": 16384,
            "obs": 256,
            "path": 512,
        ],
    }
}

/// One row of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Table2Row {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Total buffers across all instances.
    pub buffer_count: usize,
    /// Smallest per-instance buffer, bytes.
    pub min_bytes: u64,
    /// Largest per-instance buffer, bytes.
    pub max_bytes: u64,
}

/// Computes the Table 2 row for `bench`.
#[must_use]
pub fn table2_row(bench: Benchmark) -> Table2Row {
    let bufs = buffers(bench);
    Table2Row {
        benchmark: bench,
        buffer_count: bufs.len() * INSTANCES,
        min_bytes: bufs.iter().map(|b| b.size).min().unwrap_or(0),
        max_bytes: bufs.iter().map(|b| b.size).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The rows exactly as printed in the paper's Table 2.
    const PAPER_TABLE2: [(&str, usize, u64, u64); 19] = [
        ("aes", 8, 128, 128),
        ("backprop", 56, 12, 10432),
        ("bfs_bulk", 40, 40, 16384),
        ("bfs_queue", 40, 40, 16384),
        ("fft_strided", 48, 4096, 4096),
        ("fft_transpose", 16, 2048, 2048),
        ("gemm_blocked", 24, 16384, 16384),
        ("gemm_ncubed", 24, 16384, 16384),
        ("kmp", 32, 4, 64824),
        ("md_grid", 56, 256, 2560),
        ("md_knn", 56, 1024, 16384),
        ("nw", 48, 512, 66564),
        ("sort_merge", 16, 8192, 8192),
        ("sort_radix", 32, 16, 8192),
        ("spmv_crs", 40, 1976, 6664),
        ("spmv_ellpack", 32, 1976, 19760),
        ("stencil2d", 24, 36, 32768),
        ("stencil3d", 24, 8, 65536),
        ("viterbi", 40, 256, 16384),
    ];

    #[test]
    fn table2_matches_the_paper_exactly() {
        for (name, count, min, max) in PAPER_TABLE2 {
            let bench: Benchmark = name.parse().unwrap();
            let row = table2_row(bench);
            assert_eq!(row.buffer_count, count, "{name}: buffer count");
            assert_eq!(row.min_bytes, min, "{name}: min size");
            assert_eq!(row.max_bytes, max, "{name}: max size");
        }
    }

    #[test]
    fn all_rows_fit_the_256_entry_capchecker() {
        for b in Benchmark::ALL {
            assert!(
                table2_row(b).buffer_count <= 256,
                "{b} would overflow the table"
            );
        }
    }

    #[test]
    fn buffer_names_are_unique_within_an_instance() {
        for b in Benchmark::ALL {
            let names: Vec<_> = buffers(b).iter().map(|d| d.name).collect();
            let mut dedup = names.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), names.len(), "{b}: duplicate buffer names");
        }
    }
}
