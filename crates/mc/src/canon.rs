//! Symmetry reduction: canonical state encodings modulo task/object ids.
//!
//! Every op in the alphabet is slot-relative (see [`crate::ops`]), so
//! renaming tasks or objects commutes with the transition relation:
//! `π(δ(s, op)) = δ(π(s), π(op))` for any pair of permutations `π`. Two
//! states that differ only by a renaming therefore have isomorphic
//! futures, and BFS only needs to expand one representative per orbit.
//!
//! The representative is chosen by brute force — the model is capped at
//! 4×4, so at most `4! × 4! = 576` relabelings per state — as the
//! lexicographically least byte encoding: one global byte
//! ([`McState::global_bits`], permutation-invariant) followed by the
//! per-pair cells ([`McState::cell`]) in relabeled row-major order.
//! Deduplication compares *entire encodings*, never hashes, so a hash
//! collision can hide no state; [`fnv_hash`] exists only as a compact
//! label for reports and property tests.

use crate::state::McState;

/// A canonical (orbit-representative) encoding of one model state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Canonical {
    /// The lexicographically least encoding over all relabelings.
    pub bytes: Vec<u8>,
    /// The task permutation achieving it (index = old id, value = new).
    pub task_perm: Vec<u8>,
    /// The object permutation achieving it.
    pub object_perm: Vec<u8>,
}

/// All permutations of `0..n`, in a fixed deterministic order.
pub(crate) fn permutations(n: u8) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut items: Vec<u8> = (0..n).collect();
    heap_permute(&mut items, n as usize, &mut out);
    out.sort();
    out
}

fn heap_permute(items: &mut Vec<u8>, k: usize, out: &mut Vec<Vec<u8>>) {
    if k <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

/// Encodes `state` under one relabeling: the global byte, then the cell
/// of every *relabeled* pair in row-major `(new_task, new_object)` order.
///
/// `task_perm[old] = new`, so the cell written at relabeled position
/// `(nt, no)` is the cell of the old pair mapping to it — we index by
/// the inverse permutation.
fn encode_under(state: &McState, task_perm: &[u8], object_perm: &[u8]) -> Vec<u8> {
    let cfg = state.config();
    let mut inv_t = vec![0u8; usize::from(cfg.tasks)];
    let mut inv_o = vec![0u8; usize::from(cfg.objects)];
    for (old, &new) in task_perm.iter().enumerate() {
        inv_t[usize::from(new)] = old as u8;
    }
    for (old, &new) in object_perm.iter().enumerate() {
        inv_o[usize::from(new)] = old as u8;
    }
    let mut bytes = Vec::with_capacity(1 + usize::from(cfg.tasks) * usize::from(cfg.objects));
    bytes.push(state.global_bits());
    for nt in 0..cfg.tasks {
        for no in 0..cfg.objects {
            bytes.push(state.cell(inv_t[usize::from(nt)], inv_o[usize::from(no)]));
        }
    }
    bytes
}

/// The canonical encoding of `state`: the lexicographic minimum of
/// `encode_under` over every task×object permutation pair.
#[must_use]
pub fn canonicalize(state: &McState) -> Canonical {
    let cfg = state.config();
    let mut best: Option<Canonical> = None;
    for task_perm in permutations(cfg.tasks) {
        for object_perm in permutations(cfg.objects) {
            let bytes = encode_under(state, &task_perm, &object_perm);
            let better = match &best {
                None => true,
                Some(b) => bytes < b.bytes,
            };
            if better {
                best = Some(Canonical {
                    bytes,
                    task_perm: task_perm.clone(),
                    object_perm: object_perm.clone(),
                });
            }
        }
    }
    best.expect("at least the identity permutation is tried")
}

/// Precomputed permutation tables for one model size — the explorer
/// builds this once instead of regenerating `n!` vectors per state.
pub(crate) struct PermTables {
    /// Task permutations, each paired with its inverse.
    pub tasks: Vec<(Vec<u8>, Vec<u8>)>,
    /// Object permutations, each paired with its inverse.
    pub objects: Vec<(Vec<u8>, Vec<u8>)>,
}

fn with_inverses(perms: Vec<Vec<u8>>) -> Vec<(Vec<u8>, Vec<u8>)> {
    perms
        .into_iter()
        .map(|perm| {
            let mut inv = vec![0u8; perm.len()];
            for (old, &new) in perm.iter().enumerate() {
                inv[usize::from(new)] = old as u8;
            }
            (perm, inv)
        })
        .collect()
}

impl PermTables {
    pub(crate) fn new(tasks: u8, objects: u8) -> PermTables {
        PermTables {
            tasks: with_inverses(permutations(tasks)),
            objects: with_inverses(permutations(objects)),
        }
    }
}

/// The canonical encoding packed exactly into a `u128`: 8 bits of
/// [`McState::global_bits`], then one 5-bit cell per pair in relabeled
/// row-major order (each cell fits 5 bits; the model caps at 4×4 = 16
/// pairs = 80 bits, 88 total).
///
/// This is a *lossless packing*, not a hash — deduplicating on it is as
/// sound as deduplicating on the byte encoding.
pub(crate) fn canonical_key(state: &McState, perms: &PermTables) -> u128 {
    let cfg = state.config();
    let tasks = usize::from(cfg.tasks);
    let objects = usize::from(cfg.objects);
    // Cells in identity order, fetched once.
    let mut cells = [0u8; 16];
    for t in 0..tasks {
        for o in 0..objects {
            cells[t * objects + o] = state.cell(t as u8, o as u8);
        }
    }
    let mut best = u128::MAX;
    for (_, inv_t) in &perms.tasks {
        for (_, inv_o) in &perms.objects {
            let mut packed = u128::from(state.global_bits());
            for nt in 0..tasks {
                for no in 0..objects {
                    let cell = cells[usize::from(inv_t[nt]) * objects + usize::from(inv_o[no])];
                    packed = (packed << 5) | u128::from(cell);
                }
            }
            if packed < best {
                best = packed;
            }
        }
    }
    best
}

/// FNV-1a 64-bit hash of a canonical encoding — a compact label for
/// reports and property tests, never used for deduplication.
#[must_use]
pub fn fnv_hash(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::McOp;
    use crate::state::McConfig;

    #[test]
    fn permutations_are_complete_and_sorted() {
        let perms = permutations(3);
        assert_eq!(perms.len(), 6);
        assert_eq!(perms[0], vec![0, 1, 2]);
        assert_eq!(perms[5], vec![2, 1, 0]);
    }

    #[test]
    fn relabeled_runs_share_a_canonical_encoding() {
        let cfg = McConfig::new(2, 3);
        let ops = [
            McOp::GrantFull { task: 0, object: 1 },
            McOp::GrantNarrow { task: 1, object: 2 },
            McOp::Spill { task: 0, object: 0 },
            McOp::InstallVerdicts,
        ];
        let task_perm = [1u8, 0];
        let object_perm = [2u8, 0, 1];
        let mut a = McState::new(cfg);
        let mut b = McState::new(cfg);
        for op in ops {
            a.apply(op).unwrap();
            b.apply(op.relabel(&task_perm, &object_perm)).unwrap();
        }
        assert_eq!(canonicalize(&a).bytes, canonicalize(&b).bytes);
    }

    #[test]
    fn packed_key_equals_packed_canonical_bytes() {
        let cfg = McConfig::new(2, 3);
        let perms = PermTables::new(2, 3);
        let mut state = McState::new(cfg);
        for op in [
            McOp::GrantFull { task: 1, object: 2 },
            McOp::GrantNarrow { task: 0, object: 1 },
            McOp::Spill { task: 1, object: 0 },
            McOp::InstallVerdicts,
            McOp::Degrade,
        ] {
            // The byte encoding is the 8-bit global word followed by
            // 5-bit cells; packing its lexicographic minimum must equal
            // what `canonical_key` computes directly.
            let bytes = canonicalize(&state).bytes;
            let mut expect = u128::from(bytes[0]);
            for &cell in &bytes[1..] {
                assert!(cell < 32, "cells must fit five bits");
                expect = (expect << 5) | u128::from(cell);
            }
            assert_eq!(canonical_key(&state, &perms), expect);
            state.apply(op).unwrap();
        }
    }

    #[test]
    fn different_grant_shapes_do_not_collide() {
        let cfg = McConfig::new(2, 2);
        let mut a = McState::new(cfg);
        let mut b = McState::new(cfg);
        a.apply(McOp::GrantFull { task: 0, object: 0 }).unwrap();
        b.apply(McOp::GrantNarrow { task: 0, object: 0 }).unwrap();
        assert_ne!(canonicalize(&a).bytes, canonicalize(&b).bytes);
    }
}
