//! The bounded breadth-first explorer.
//!
//! BFS proceeds in depth levels. Each level's frontier holds only the
//! op-index path that reached each state; expansion rebuilds the
//! concrete [`McState`] by replaying that path from the initial state,
//! applies every alphabet op, canonicalizes each successor, and keeps
//! the ones whose canonical encoding has not been seen. Dedup compares
//! losslessly packed canonical encodings (`u128`s, not hashes), so the
//! reduction is exact — a collision cannot hide a state.
//!
//! With `threads > 1`, frontier states expand in parallel through
//! [`perf::parallel_map`]. Workers only read the *prior* levels' seen
//! set; within-level duplicates are pruned afterwards in a sequential,
//! frontier-index-ordered merge, and when violations surface the whole
//! level still finishes so the lowest `(frontier index, op index)`
//! violation is reported. Both choices exist for one reason: every
//! counter and the reported counterexample are byte-identical across
//! thread counts.

use crate::canon::{canonical_key, PermTables};
use crate::ops::{alphabet, McOp};
use crate::state::{McConfig, McState, PlantedBug, Violation};
use obs::{Event, EventKind};
use std::collections::HashSet;

/// Parameters of one bounded exploration.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Maximum path length explored (BFS levels).
    pub depth: u32,
    /// Tasks in the model.
    pub tasks: u8,
    /// Objects per task.
    pub objects: u8,
    /// Optional planted bug (test hook).
    pub planted: Option<PlantedBug>,
    /// Worker threads for frontier expansion (1 = sequential).
    pub threads: usize,
}

impl ExploreConfig {
    /// The default scaled-down run: 2 tasks × 3 objects, sequential.
    #[must_use]
    pub fn new(depth: u32) -> ExploreConfig {
        ExploreConfig {
            depth,
            tasks: 2,
            objects: 3,
            planted: None,
            threads: 1,
        }
    }

    fn mc_config(self) -> McConfig {
        let mut cfg = McConfig::new(self.tasks, self.objects);
        if let Some(bug) = self.planted {
            cfg = cfg.with_planted(bug);
        }
        cfg
    }
}

/// A property violation found during exploration, with its replayable
/// path and the ddmin-shrunk counterexample.
#[derive(Clone, Debug)]
pub struct FoundViolation {
    /// The exact op sequence that reached the violation.
    pub path: Vec<McOp>,
    /// What broke.
    pub violation: Violation,
    /// The 1-minimal subsequence that still violates (via
    /// [`conformance::shrink()`]).
    pub shrunk: Vec<McOp>,
}

/// Outcome of one bounded exploration.
#[derive(Clone, Debug)]
pub struct ExploreResult {
    /// Unique canonical states discovered (including the initial state).
    pub states: u64,
    /// Transitions applied (op applications that completed).
    pub transitions: u64,
    /// Successors that re-hit an already-seen canonical state.
    pub revisits: u64,
    /// Deepest level actually expanded.
    pub depth_reached: u32,
    /// New-state count per depth level (index 0 = depth 1).
    pub frontier_per_depth: Vec<u64>,
    /// True when the frontier emptied before the depth bound — the
    /// reachable state space was exhausted.
    pub complete: bool,
    /// The first violation found, in deterministic order, if any.
    pub violation: Option<FoundViolation>,
    /// Observability events (cycle = depth level), mirroring the
    /// conformance harness's convention.
    pub events: Vec<Event>,
}

/// One expanded successor, before the sequential dedup merge.
struct Successor {
    /// The losslessly packed canonical encoding ([`canonical_key`]).
    key: u128,
    /// Index of the op that produced this successor.
    op_idx: u16,
}

/// Everything one frontier state produced: its kept successors in op
/// order, how many ops applied, how many successors were prior-level
/// revisits, and its first violation (op index + detail).
struct Expansion {
    successors: Vec<Successor>,
    transitions: u64,
    revisits: u64,
    violation: Option<(u16, Violation)>,
}

/// Rebuilds a frontier state by replaying its op-index path from the
/// initial state. The frontier stores *only paths* (a few bytes each):
/// materialized states would hold hundreds of megabytes of small
/// allocations at deep levels, and the resulting allocator and
/// page-fault churn costs far more than ≤ depth replays per state.
fn replay_path(cfg: McConfig, ops: &[McOp], path: &[u16]) -> McState {
    let mut state = McState::new(cfg);
    for &op_idx in path {
        state
            .apply(ops[usize::from(op_idx)])
            .expect("a frontier path replays cleanly — it was checked when first explored");
    }
    state
}

/// Expands one frontier state against the whole alphabet. `seen` is the
/// prior-level canonical set — read-only, shared across workers.
fn expand(
    cfg: McConfig,
    ops: &[McOp],
    perms: &PermTables,
    seen: &HashSet<u128>,
    path: &[u16],
) -> Expansion {
    let mut out = Expansion {
        successors: Vec::new(),
        transitions: 0,
        revisits: 0,
        violation: None,
    };
    // One replay per frontier state; each op then works on a clone — all
    // ops share the same predecessor.
    let mut base = replay_path(cfg, ops, path);
    for (op_idx, &op) in ops.iter().enumerate() {
        // Abstractly inert ops (see `McState::abstractly_inert`) run on
        // the shared base: their successor is canonically the
        // predecessor, whose key is already in `seen`. The refinement
        // and invariant checks still run in full.
        if base.abstractly_inert(op) {
            #[cfg(debug_assertions)]
            let key_before = canonical_key(&base, perms);
            match base.apply(op) {
                Ok(()) => {
                    #[cfg(debug_assertions)]
                    debug_assert_eq!(
                        key_before,
                        canonical_key(&base, perms),
                        "op {op:?} claimed inert but changed the canonical state"
                    );
                    out.transitions += 1;
                    out.revisits += 1;
                }
                Err(violation) => {
                    out.violation = Some((op_idx as u16, violation));
                    break;
                }
            }
            continue;
        }
        let mut state = base.clone();
        match state.apply(op) {
            Ok(()) => {
                out.transitions += 1;
                let key = canonical_key(&state, perms);
                if seen.contains(&key) {
                    out.revisits += 1;
                    continue;
                }
                out.successors.push(Successor {
                    key,
                    op_idx: op_idx as u16,
                });
            }
            Err(violation) => {
                out.violation = Some((op_idx as u16, violation));
                // Deterministic tie-break needs nothing past the first
                // violating op of this state.
                break;
            }
        }
    }
    out
}

fn path_to_ops(ops: &[McOp], path: &[u16], last: Option<u16>) -> Vec<McOp> {
    path.iter()
        .copied()
        .chain(last)
        .map(|i| ops[usize::from(i)])
        .collect()
}

/// Runs the bounded BFS to completion or the depth bound.
///
/// Deterministic for a fixed config *including across `threads` values*:
/// states expand in frontier order, successors merge in
/// `(frontier index, op index)` order, and the reported violation is the
/// least such pair of the first level containing any.
///
/// # Panics
///
/// Propagates worker panics from the parallel expansion path.
#[must_use]
pub fn explore(cfg: ExploreConfig) -> ExploreResult {
    let mc_cfg = cfg.mc_config();
    let ops = alphabet(cfg.tasks, cfg.objects);
    let perms = PermTables::new(cfg.tasks, cfg.objects);
    let initial = McState::new(mc_cfg);

    let mut seen: HashSet<u128> = HashSet::new();
    seen.insert(canonical_key(&initial, &perms));
    let mut frontier: Vec<Vec<u16>> = vec![Vec::new()];

    let mut result = ExploreResult {
        states: 1,
        transitions: 0,
        revisits: 0,
        depth_reached: 0,
        frontier_per_depth: Vec::new(),
        complete: false,
        violation: None,
        events: Vec::new(),
    };

    for depth in 1..=cfg.depth {
        if frontier.is_empty() {
            result.complete = true;
            break;
        }
        let expansions: Vec<Expansion> = if cfg.threads > 1 {
            let frontier_ref = &frontier;
            let seen_ref = &seen;
            let ops_ref = &ops;
            let perms_ref = &perms;
            perf::parallel_map(cfg.threads, frontier_ref.len(), |i| {
                expand(mc_cfg, ops_ref, perms_ref, seen_ref, &frontier_ref[i])
            })
            .expect("model-checker worker panicked")
        } else {
            frontier
                .iter()
                .map(|path| expand(mc_cfg, &ops, &perms, &seen, path))
                .collect()
        };

        result.depth_reached = depth;
        let mut next: Vec<Vec<u16>> = Vec::new();
        let mut level_new = 0u64;
        for (f_idx, expansion) in expansions.iter().enumerate() {
            result.transitions += expansion.transitions;
            result.revisits += expansion.revisits;
            for successor in &expansion.successors {
                // Within-level dedup happens here, sequentially and in
                // (frontier index, op index) order — identical to what
                // the sequential path interleaves with expansion.
                if seen.insert(successor.key) {
                    level_new += 1;
                    let mut path = frontier[f_idx].clone();
                    path.push(successor.op_idx);
                    next.push(path);
                } else {
                    result.revisits += 1;
                }
            }
            if result.violation.is_none() {
                if let Some((op_idx, violation)) = &expansion.violation {
                    let full = path_to_ops(&ops, &frontier[f_idx], Some(*op_idx));
                    let shrunk = conformance::shrink(&full, &|candidate| {
                        McState::replay(mc_cfg, candidate).is_some()
                    });
                    result.violation = Some(FoundViolation {
                        path: full,
                        violation: violation.clone(),
                        shrunk,
                    });
                }
            }
        }
        result.states += level_new;
        result.frontier_per_depth.push(level_new);
        result.events.push(Event {
            cycle: u64::from(depth),
            kind: EventKind::ModelCheckDepth {
                depth,
                states: result.states,
                frontier: level_new,
            },
        });
        if result.violation.is_some() {
            break;
        }
        frontier = next;
    }
    if result.violation.is_none() && frontier.is_empty() {
        result.complete = true;
    }
    result.events.push(Event {
        cycle: u64::from(result.depth_reached),
        kind: EventKind::ModelCheckComplete {
            states: result.states,
            violations: u64::from(result.violation.is_some()),
        },
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shallow_exploration_is_clean_and_deterministic() {
        let cfg = ExploreConfig {
            depth: 3,
            tasks: 2,
            objects: 2,
            planted: None,
            threads: 1,
        };
        let a = explore(cfg);
        assert!(a.violation.is_none(), "clean model must verify");
        assert!(a.states > 1);
        let b = explore(cfg);
        assert_eq!(a.states, b.states);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.revisits, b.revisits);
        assert_eq!(a.frontier_per_depth, b.frontier_per_depth);
    }

    #[test]
    fn thread_count_does_not_change_any_counter() {
        let mut cfg = ExploreConfig {
            depth: 3,
            tasks: 2,
            objects: 2,
            planted: None,
            threads: 1,
        };
        let seq = explore(cfg);
        cfg.threads = 4;
        let par = explore(cfg);
        assert_eq!(seq.states, par.states);
        assert_eq!(seq.transitions, par.transitions);
        assert_eq!(seq.revisits, par.revisits);
        assert_eq!(seq.frontier_per_depth, par.frontier_per_depth);
        assert_eq!(seq.complete, par.complete);
    }

    #[test]
    fn planted_bug_is_found_quickly_with_a_short_shrunk_repro() {
        let cfg = ExploreConfig {
            depth: 4,
            tasks: 2,
            objects: 2,
            planted: Some(PlantedBug::BoundsOffByOne),
            threads: 1,
        };
        let result = explore(cfg);
        let found = result.violation.expect("planted bug must be found");
        assert_eq!(found.violation.property, "verdict-refinement");
        assert!(
            found.shrunk.len() <= 6,
            "shrunk repro too long: {:?}",
            found.shrunk
        );
        // The shrunk sequence must still reproduce from scratch.
        assert!(McState::replay(cfg.mc_config(), &found.shrunk).is_some());
    }
}
