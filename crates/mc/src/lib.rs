//! # capcheri-mc — explicit-state bounded model checking
//!
//! The conformance harness (PR 4) samples the behaviour space: seeded
//! random streams, millions of ops, probabilistic coverage. This crate
//! *exhausts* a scaled-down corner of it: 2–3 tasks, at most 4 objects,
//! a tiny tagged memory, a 4-entry verdict cache — and breadth-first
//! search over **every** legal operation interleaving up to a depth
//! bound, checking every state against the same golden
//! [`conformance::Oracle`] that anchors the differential tests.
//!
//! ## What is checked
//!
//! Per transition (refinement): every subject — [`capchecker::CapChecker`],
//! [`capchecker::CachedCapChecker`], the post-degradation path, and the
//! verdict-elided variants — returns exactly the verdict its spec
//! demands (the oracle's verdict, or `Granted` on pairs a live
//! `StaticVerdictMap` waves). Per state (invariants): no access succeeds
//! without a live grant, derivation never widens authority, revocation
//! sweeps leave no tag with authority over the swept region, verdict
//! bitmaps stay coherent with their maps, and latched exception flags
//! match the model's prediction.
//!
//! ## How the state space stays small
//!
//! Every op is slot-relative, so the transition relation commutes with
//! task/object renaming; [`canon::canonicalize`] quotients each state by
//! the full permutation group (≤ `4!×4!` relabelings, brute-forced) and
//! BFS deduplicates on the *entire* canonical encoding — no hashing in
//! the soundness path. See DESIGN.md §3j for the argument and what a
//! depth-`d` certificate buys.
//!
//! ## Quick start
//!
//! ```
//! let cfg = capcheri_mc::ExploreConfig { depth: 3, ..capcheri_mc::ExploreConfig::new(3) };
//! let result = capcheri_mc::explore(cfg);
//! assert!(result.violation.is_none(), "{:?}", result.violation);
//! ```
//!
//! Or from the command line:
//! `simulate verify --depth 10 --tasks 2 --objects 3 [--json]`.
//!
//! Counterexamples replay through [`conformance::shrink()`] and render as
//! paste-ready regression tests ([`report::regression_test`]).

#![warn(missing_docs)]

pub mod canon;
pub mod explore;
pub mod ops;
pub mod report;
pub mod state;

pub use canon::{canonicalize, fnv_hash, Canonical};
pub use explore::{explore, ExploreConfig, ExploreResult, FoundViolation};
pub use ops::{alphabet, McOp};
pub use report::{regression_test, summary, to_json, SCHEMA};
pub use state::{GrantKind, McConfig, McState, PlantedBug, SavedState, Violation, SUBJECTS};
