//! The model checker's op alphabet and the scaled-down address geometry.
//!
//! Every operation is *slot-relative*: a `(task, object)` pair owns the
//! fixed address window [`slot_base`]`..+`[`SLOT_BYTES`], and every op
//! parameterized by ids derives its capabilities, access addresses, and
//! sweep regions from that window alone. Renaming tasks or objects
//! therefore permutes states without changing any judgment — the
//! equivariance that makes the symmetry reduction in [`crate::canon`]
//! sound.

use cheri::{Capability, Perms};

/// Bytes of the address window owned by one `(task, object)` pair.
pub const SLOT_BYTES: u64 = 0x100;
/// Bytes of the narrowed (derived) capability over a slot.
pub const NARROW_BYTES: u64 = 0x80;
/// First slot's base address (everything below is never granted).
pub const SLOTS_BASE: u64 = 0x1000;

/// Base address of `(task, object)`'s slot in a model with `objects`
/// objects per task.
#[must_use]
pub fn slot_base(task: u8, object: u8, objects: u8) -> u64 {
    SLOTS_BASE + (u64::from(task) * u64::from(objects) + u64::from(object)) * SLOT_BYTES
}

/// Tagged-memory size covering every slot of a `tasks`×`objects` model.
#[must_use]
pub fn mem_bytes(tasks: u8, objects: u8) -> u64 {
    SLOTS_BASE + u64::from(tasks) * u64::from(objects) * SLOT_BYTES
}

/// The full-authority capability over `(task, object)`'s slot: read+write
/// across the whole window.
#[must_use]
pub fn full_cap(task: u8, object: u8, objects: u8) -> Capability {
    let slot = slot_base(task, object, objects);
    Capability::root()
        .set_bounds(slot, SLOT_BYTES)
        .expect("slot bounds derive from root")
        .and_perms(Perms::RW)
        .expect("RW derives from root perms")
}

/// The narrowed capability: derived from [`full_cap`] by shrinking bounds
/// to the front half of the slot and dropping the store permission.
#[must_use]
pub fn narrow_cap(task: u8, object: u8, objects: u8) -> Capability {
    let slot = slot_base(task, object, objects);
    full_cap(task, object, objects)
        .set_bounds(slot, NARROW_BYTES)
        .expect("narrow bounds nest in the full slot")
        .and_perms(Perms::LOAD)
        .expect("LOAD is a subset of RW")
}

/// One legal operation of the scaled-down model.
///
/// Fields are plain integers, so `Debug` output doubles as constructor
/// syntax in generated regression tests (the same property
/// `conformance::Op` relies on).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum McOp {
    /// Install the full-authority RW capability for the pair's slot.
    GrantFull {
        /// Task id.
        task: u8,
        /// Object id.
        object: u8,
    },
    /// Install the derived narrow LOAD-only capability (front half).
    GrantNarrow {
        /// Task id.
        task: u8,
        /// Object id.
        object: u8,
    },
    /// Attempt to install a sealed capability (must be refused).
    GrantSealed {
        /// Task id.
        task: u8,
        /// Object id.
        object: u8,
    },
    /// Attempt to install an untagged capability (must be refused).
    GrantUntagged {
        /// Task id.
        task: u8,
        /// Object id.
        object: u8,
    },
    /// Pure derivation probe: narrow, seal/unseal round-trip, and a
    /// widening attempt that must fail. Never changes state.
    Derive {
        /// Task id.
        task: u8,
        /// Object id.
        object: u8,
    },
    /// In-bounds 8-byte read inside the slot (granted under any grant).
    Read {
        /// Task id.
        task: u8,
        /// Object id.
        object: u8,
    },
    /// 8-byte read overflowing the slot's top by exactly one byte — the
    /// off-by-one bounds probe.
    ReadEdge {
        /// Task id.
        task: u8,
        /// Object id.
        object: u8,
    },
    /// 8-byte DMA write at the slot head (needs the full grant's STORE;
    /// granted writes clear the slot's spilled tag downstream).
    WriteHead {
        /// Task id.
        task: u8,
        /// Object id.
        object: u8,
    },
    /// In-bounds read with no hardware provenance (always denied).
    ReadNoProv {
        /// Task id.
        task: u8,
        /// Object id.
        object: u8,
    },
    /// CPU spills a capability with the slot's bounds to the slot's
    /// first granule of tagged memory.
    Spill {
        /// Task id.
        task: u8,
        /// Object id.
        object: u8,
    },
    /// Evict every table entry of the task (grant table revocation).
    Revoke {
        /// Task id.
        task: u8,
    },
    /// Revocation sweep over the task's whole slot region: every spilled
    /// capability whose authority intersects it loses its tag.
    Sweep {
        /// Task id.
        task: u8,
    },
    /// Install static verdicts: every pair holding a full grant is marked
    /// safe on the elided subjects (the analyzer hand-off). Also snapshots
    /// the installed set as the *retained segment* for
    /// [`McOp::InstallSegmentVerdicts`].
    InstallVerdicts,
    /// The mode-switch actuator: rebuild every checker, re-grant live
    /// capabilities, drop static verdicts, reset latched flags.
    ModeSwitch,
    /// Degrade the degradation-path subject from cached to fixed-table.
    Degrade,
    /// Re-promote the degradation-path subject back to the cached design.
    Repromote,
    /// The epoch-scoped re-install actuator: re-install the retained
    /// segment's verdicts (filtered to pairs still holding a full grant)
    /// after a rebuild dropped the installed map — the
    /// install-after-drop interleaving the adaptive controller performs
    /// on every mode switch and re-promotion.
    InstallSegmentVerdicts,
}

impl McOp {
    /// True for ops that provably mutate nothing in any state: pure
    /// derivation probes, and grants of sealed/untagged capabilities
    /// (every implementation rejects them before touching any state —
    /// the model checker asserts exactly that). The explorer applies
    /// these in place instead of cloning, since the successor always
    /// re-hits the predecessor's canonical state.
    #[must_use]
    pub fn is_pure(self) -> bool {
        matches!(
            self,
            McOp::Derive { .. } | McOp::GrantSealed { .. } | McOp::GrantUntagged { .. }
        )
    }

    /// The op with task ids mapped through `task_perm` and object ids
    /// through `object_perm` (index = old id, value = new id) — the
    /// relabeling the symmetry-reduction property tests exercise.
    #[must_use]
    pub fn relabel(self, task_perm: &[u8], object_perm: &[u8]) -> McOp {
        let t = |task: u8| task_perm[usize::from(task)];
        let o = |object: u8| object_perm[usize::from(object)];
        match self {
            McOp::GrantFull { task, object } => McOp::GrantFull {
                task: t(task),
                object: o(object),
            },
            McOp::GrantNarrow { task, object } => McOp::GrantNarrow {
                task: t(task),
                object: o(object),
            },
            McOp::GrantSealed { task, object } => McOp::GrantSealed {
                task: t(task),
                object: o(object),
            },
            McOp::GrantUntagged { task, object } => McOp::GrantUntagged {
                task: t(task),
                object: o(object),
            },
            McOp::Derive { task, object } => McOp::Derive {
                task: t(task),
                object: o(object),
            },
            McOp::Read { task, object } => McOp::Read {
                task: t(task),
                object: o(object),
            },
            McOp::ReadEdge { task, object } => McOp::ReadEdge {
                task: t(task),
                object: o(object),
            },
            McOp::WriteHead { task, object } => McOp::WriteHead {
                task: t(task),
                object: o(object),
            },
            McOp::ReadNoProv { task, object } => McOp::ReadNoProv {
                task: t(task),
                object: o(object),
            },
            McOp::Spill { task, object } => McOp::Spill {
                task: t(task),
                object: o(object),
            },
            McOp::Revoke { task } => McOp::Revoke { task: t(task) },
            McOp::Sweep { task } => McOp::Sweep { task: t(task) },
            McOp::InstallVerdicts => McOp::InstallVerdicts,
            McOp::ModeSwitch => McOp::ModeSwitch,
            McOp::Degrade => McOp::Degrade,
            McOp::Repromote => McOp::Repromote,
            McOp::InstallSegmentVerdicts => McOp::InstallSegmentVerdicts,
        }
    }
}

/// Every legal op of a `tasks`×`objects` model, in the fixed order BFS
/// expands successors (per-pair ops first, then per-task, then global).
#[must_use]
pub fn alphabet(tasks: u8, objects: u8) -> Vec<McOp> {
    let mut ops = Vec::new();
    for task in 0..tasks {
        for object in 0..objects {
            ops.push(McOp::GrantFull { task, object });
            ops.push(McOp::GrantNarrow { task, object });
            ops.push(McOp::GrantSealed { task, object });
            ops.push(McOp::GrantUntagged { task, object });
            ops.push(McOp::Derive { task, object });
            ops.push(McOp::Read { task, object });
            ops.push(McOp::ReadEdge { task, object });
            ops.push(McOp::WriteHead { task, object });
            ops.push(McOp::ReadNoProv { task, object });
            ops.push(McOp::Spill { task, object });
        }
    }
    for task in 0..tasks {
        ops.push(McOp::Revoke { task });
        ops.push(McOp::Sweep { task });
    }
    ops.push(McOp::InstallVerdicts);
    ops.push(McOp::ModeSwitch);
    ops.push(McOp::Degrade);
    ops.push(McOp::Repromote);
    ops.push(McOp::InstallSegmentVerdicts);
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_disjoint_and_in_memory() {
        let mut seen = std::collections::BTreeSet::new();
        for t in 0..3u8 {
            for o in 0..4u8 {
                let base = slot_base(t, o, 4);
                assert!(seen.insert(base), "slot collision at ({t}, {o})");
                assert!(base + SLOT_BYTES <= mem_bytes(3, 4));
                assert_eq!(base % 16, 0, "spill granule must be aligned");
            }
        }
    }

    #[test]
    fn caps_derive_monotonically() {
        let full = full_cap(1, 2, 3);
        let narrow = narrow_cap(1, 2, 3);
        assert!(Capability::root().dominates(&full));
        assert!(full.dominates(&narrow));
        assert!(!narrow.dominates(&full));
    }

    #[test]
    fn alphabet_size_and_relabel_closure() {
        let ops = alphabet(2, 3);
        assert_eq!(ops.len(), 10 * 6 + 2 * 2 + 5);
        // Relabeling by a permutation maps the alphabet onto itself.
        let relabeled: std::collections::BTreeSet<String> = ops
            .iter()
            .map(|op| format!("{:?}", op.relabel(&[1, 0], &[2, 0, 1])))
            .collect();
        let original: std::collections::BTreeSet<String> =
            ops.iter().map(|op| format!("{op:?}")).collect();
        assert_eq!(relabeled, original);
    }
}
