//! The `capcheri.modelcheck.v1` machine-readable report.
//!
//! Byte-deterministic for a fixed [`ExploreConfig`] — including across
//! `--threads` values — so CI diffs two runs and archives the artifact.
//! Built with `obs`'s [`JsonWriter`] like every other report schema in
//! the repo.

use crate::explore::{ExploreConfig, ExploreResult};
use crate::ops::McOp;
use obs::json::JsonWriter;

/// Schema identifier embedded in the report.
pub const SCHEMA: &str = "capcheri.modelcheck.v1";

/// Formats a shrunk counterexample as a ready-to-paste regression test.
///
/// [`McOp`]'s fields are plain integers, so its `Debug` output —
/// prefixed with `capcheri_mc::McOp::` — is valid constructor syntax
/// (the same property `conformance::regression_test` relies on).
#[must_use]
pub fn regression_test(ops: &[McOp]) -> String {
    let mut body = String::new();
    body.push_str("#[test]\nfn modelcheck_regression() {\n    let ops = vec![\n");
    for op in ops {
        body.push_str(&format!("        capcheri_mc::McOp::{op:?},\n"));
    }
    body.push_str(
        "    ];\n    let cfg = capcheri_mc::McConfig::new(2, 3);\n    \
         assert_eq!(capcheri_mc::McState::replay(cfg, &ops), None);\n}\n",
    );
    body
}

/// Renders one exploration as the `capcheri.modelcheck.v1` document.
#[must_use]
pub fn to_json(cfg: &ExploreConfig, result: &ExploreResult) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string(SCHEMA);
    w.key("tasks");
    w.u64(u64::from(cfg.tasks));
    w.key("objects");
    w.u64(u64::from(cfg.objects));
    w.key("depth");
    w.u64(u64::from(cfg.depth));
    w.key("planted_bug");
    w.bool(cfg.planted.is_some());

    w.key("states");
    w.u64(result.states);
    w.key("transitions");
    w.u64(result.transitions);
    w.key("revisits");
    w.u64(result.revisits);
    w.key("depth_reached");
    w.u64(u64::from(result.depth_reached));
    w.key("complete");
    w.bool(result.complete);

    w.key("frontier_per_depth");
    w.begin_array();
    for &count in &result.frontier_per_depth {
        w.u64(count);
    }
    w.end_array();

    w.key("violations");
    w.begin_array();
    if let Some(found) = &result.violation {
        w.begin_object();
        w.key("subject");
        w.string(&found.violation.subject);
        w.key("property");
        w.string(found.violation.property);
        w.key("detail");
        w.string(&found.violation.detail);
        w.key("path_len");
        w.u64(found.path.len() as u64);
        w.key("path");
        w.begin_array();
        for op in &found.path {
            w.string(&format!("{op:?}"));
        }
        w.end_array();
        w.key("shrunk");
        w.begin_array();
        for op in &found.shrunk {
            w.string(&format!("{op:?}"));
        }
        w.end_array();
        w.key("reproducer");
        w.string(&regression_test(&found.shrunk));
        w.end_object();
    }
    w.end_array();

    w.key("verdict");
    w.string(if result.violation.is_none() {
        "clean"
    } else {
        "violation"
    });
    w.end_object();
    w.finish()
}

/// A short human-readable summary for terminal output.
#[must_use]
pub fn summary(cfg: &ExploreConfig, result: &ExploreResult) -> String {
    let mut text = format!(
        "modelcheck {}x{} depth={}\n\
         states: {} unique, {} transitions, {} revisits\n\
         depth reached: {} ({})\n",
        cfg.tasks,
        cfg.objects,
        cfg.depth,
        result.states,
        result.transitions,
        result.revisits,
        result.depth_reached,
        if result.complete {
            "state space exhausted"
        } else {
            "depth bound hit"
        },
    );
    match &result.violation {
        None => text.push_str("verdict: clean — every reachable state satisfies every property\n"),
        Some(found) => {
            text.push_str(&format!(
                "verdict: VIOLATION — {} broke {} ({})\n\
                 path ({} ops): {:?}\n\
                 shrunk ({} ops): {:?}\n",
                found.violation.subject,
                found.violation.property,
                found.violation.detail,
                found.path.len(),
                found.path,
                found.shrunk.len(),
                found.shrunk,
            ));
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;

    #[test]
    fn report_is_byte_deterministic_and_schema_tagged() {
        let cfg = ExploreConfig {
            depth: 2,
            tasks: 2,
            objects: 2,
            planted: None,
            threads: 1,
        };
        let a = to_json(&cfg, &explore(cfg));
        let b = to_json(&cfg, &explore(cfg));
        assert_eq!(a, b);
        assert!(a.contains("\"schema\":\"capcheri.modelcheck.v1\""));
        assert!(a.contains("\"verdict\":\"clean\""));
    }

    #[test]
    fn regression_test_renders_constructor_syntax() {
        let text = regression_test(&[
            McOp::GrantFull { task: 0, object: 0 },
            McOp::ReadEdge { task: 0, object: 0 },
        ]);
        assert!(text.contains("capcheri_mc::McOp::GrantFull { task: 0, object: 0 }"));
        assert!(text.contains("McState::replay"));
    }
}
