//! The concrete model state: five checker subjects run in lockstep with
//! the golden oracle and an independent live-grant model.
//!
//! One [`McState`] holds:
//!
//! * the PR 4 [`Oracle`] — the *spec* every verdict is compared against;
//! * five subjects: the fixed-table [`CapChecker`], the
//!   [`CachedCapChecker`], the post-degradation path (cached until a
//!   [`McOp::Degrade`], fixed-table after), and an elided variant of
//!   each (a `StaticVerdictMap`/`VerdictBitmap` installed);
//! * an *independent* abstract model — which pairs hold which grant,
//!   which slots hold spilled tags, which pairs the verdict map waves —
//!   used both to cross-check the oracle ("no access succeeds without a
//!   live grant") and as the canonical encoding in [`crate::canon`].
//!
//! [`McState::apply`] is the transition function: it replays one op
//! through everything, checks refinement (every subject's verdict equals
//! its spec), and checks the per-state invariants (map/bitmap coherence,
//! exception-flag agreement, tag memory mirroring the spill set).

use crate::ops::{full_cap, mem_bytes, narrow_cap, slot_base, McOp, NARROW_BYTES, SLOT_BYTES};
use capchecker::{
    sweep_revoked, CachedCapChecker, CachedCheckerConfig, CachedCheckerSnapshot, CapChecker,
    CheckerConfig, CheckerSnapshot, StaticVerdict, StaticVerdictMap,
};
use cheri::{CapFault, Capability};
use conformance::{Oracle, Verdict};
use hetsim::{Access, Denial, DenyReason, MasterId, ObjectId, TaggedMemory, TaskId};
use ioprotect::IoProtection;
use std::collections::{BTreeMap, BTreeSet};

/// A bug deliberately reintroduced behind this hook so tests can prove
/// the model checker finds it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlantedBug {
    /// The PR 4 off-by-one: when a request is denied for bounds, retry
    /// with `len - 1` and wave the original through if the retry passes
    /// — re-admitting exactly the one-byte overflows.
    BoundsOffByOne,
}

/// Scaled-down model configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct McConfig {
    /// Tasks in the model (1–4).
    pub tasks: u8,
    /// Objects per task (1–4).
    pub objects: u8,
    /// Optional planted bug on the fixed-table subject.
    pub planted: Option<PlantedBug>,
}

impl McConfig {
    /// A `tasks`×`objects` model with no planted bug.
    ///
    /// # Panics
    ///
    /// When either dimension is outside 1–4 — the explicit-state frontier
    /// is only tractable at the scaled-down sizes.
    #[must_use]
    pub fn new(tasks: u8, objects: u8) -> McConfig {
        assert!(
            (1..=4).contains(&tasks) && (1..=4).contains(&objects),
            "model dimensions must be 1-4 tasks x 1-4 objects"
        );
        McConfig {
            tasks,
            objects,
            planted: None,
        }
    }

    /// This configuration with a planted bug enabled.
    #[must_use]
    pub fn with_planted(mut self, bug: PlantedBug) -> McConfig {
        self.planted = Some(bug);
        self
    }

    fn pairs(self) -> usize {
        usize::from(self.tasks) * usize::from(self.objects)
    }

    fn checker_config(self) -> CheckerConfig {
        CheckerConfig {
            entries: self.pairs(),
            ..CheckerConfig::fine()
        }
    }

    fn cached_config(self) -> CachedCheckerConfig {
        CachedCheckerConfig {
            cache_entries: 4,
            miss_penalty: 35,
            base: self.checker_config(),
        }
    }
}

/// What kind of grant a pair currently holds in the live-grant model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum GrantKind {
    /// The full-authority RW capability over the whole slot.
    Full,
    /// The derived LOAD-only capability over the front half.
    Narrow,
}

/// The degradation-path subject: cached until degraded, fixed after.
#[derive(Clone, Debug)]
enum DegradingPath {
    Cached(CachedCapChecker),
    Fixed(CapChecker),
}

/// Display names of the five subjects, in expected-flag index order.
pub const SUBJECTS: [&str; 5] = [
    "CapChecker",
    "CachedCapChecker",
    "DegradingPath",
    "CapChecker+Verdicts",
    "CachedCapChecker+Verdicts",
];

/// One property violation: which subject broke which property, and how.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The subject (or model component) that disagreed.
    pub subject: String,
    /// The property broken (stable label, used in reports).
    pub property: &'static str,
    /// Deterministic human-readable detail.
    pub detail: String,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Probe {
    Read,
    ReadEdge,
    WriteHead,
    ReadNoProv,
}

const PROBES: [Probe; 4] = [
    Probe::Read,
    Probe::ReadEdge,
    Probe::WriteHead,
    Probe::ReadNoProv,
];

/// The full concrete state of the scaled-down model.
#[derive(Clone, Debug)]
pub struct McState {
    cfg: McConfig,
    oracle: Oracle,
    uncached: CapChecker,
    cached: CachedCapChecker,
    degrading: DegradingPath,
    elided: CapChecker,
    elided_cached: CachedCapChecker,
    /// Live grants: the independent model the oracle is checked against.
    shadow: BTreeMap<(u8, u8), GrantKind>,
    /// Pairs whose slot currently holds a spilled, tagged capability.
    spills: BTreeSet<(u8, u8)>,
    /// Pairs the installed verdict maps wave through (empty ⇒ no waving).
    safe: BTreeSet<(u8, u8)>,
    /// The retained analysis segment: the safe set snapshotted by the
    /// last `InstallVerdicts`, surviving rebuilds so
    /// `InstallSegmentVerdicts` can re-install it — the model of the
    /// driver's epoch-scoped [`capchecker::SegmentVerdicts`] ledger.
    segment: BTreeSet<(u8, u8)>,
    /// Whether verdict maps are installed on the elided subjects.
    maps_live: bool,
    /// Expected exception flags, one per [`SUBJECTS`] entry.
    expected: [bool; 5],
}

/// Architectural snapshot of one [`McState`], built from the checker
/// snapshot hooks — what the BFS frontier stores between depth levels.
#[derive(Clone, Debug)]
pub struct SavedState {
    uncached: CheckerSnapshot,
    cached: CachedCheckerSnapshot,
    degrading: SavedDegrading,
    elided: CheckerSnapshot,
    elided_cached: CachedCheckerSnapshot,
    oracle: Oracle,
    shadow: BTreeMap<(u8, u8), GrantKind>,
    spills: BTreeSet<(u8, u8)>,
    safe: BTreeSet<(u8, u8)>,
    segment: BTreeSet<(u8, u8)>,
    maps_live: bool,
    expected: [bool; 5],
}

#[derive(Clone, Debug)]
enum SavedDegrading {
    Cached(CachedCheckerSnapshot),
    Fixed(CheckerSnapshot),
}

fn to_verdict(result: Result<(), Denial>) -> Verdict {
    match result {
        Ok(()) => Verdict::Granted,
        Err(denial) => Verdict::Denied(denial.reason),
    }
}

/// A relabeling-invariant label for one verdict: the grant/deny shape
/// and the denial *kind*, with concrete addresses stripped — slot bases
/// differ across task/object renamings, the judgment must not.
fn verdict_label(verdict: &Verdict) -> &'static str {
    match verdict {
        Verdict::Granted => "G",
        Verdict::Denied(reason) => match reason {
            DenyReason::NoEntry => "D:no-entry",
            DenyReason::OutOfBounds => "D:oob",
            DenyReason::MissingPermission => "D:perm",
            DenyReason::InvalidTag => "D:tag",
            DenyReason::BadProvenance => "D:prov",
            DenyReason::Capability(fault) => match fault {
                cheri::CapFault::TagViolation => "D:cap-tag",
                cheri::CapFault::SealViolation => "D:cap-seal",
                cheri::CapFault::BoundsViolation { .. } => "D:cap-bounds",
                cheri::CapFault::PermissionViolation { .. } => "D:cap-perm",
                cheri::CapFault::MonotonicityViolation => "D:cap-mono",
                cheri::CapFault::UnrepresentableBounds => "D:cap-repr-bounds",
                cheri::CapFault::UnrepresentableAddress => "D:cap-repr-addr",
                cheri::CapFault::InvalidObjectType => "D:cap-otype",
            },
        },
    }
}

impl McState {
    /// The initial state: empty tables, empty tag memory, no verdict
    /// maps. Fully symmetric under task/object renaming — the anchor the
    /// symmetry reduction needs.
    #[must_use]
    pub fn new(cfg: McConfig) -> McState {
        McState {
            cfg,
            oracle: Oracle::new(cfg.pairs()),
            uncached: CapChecker::new(cfg.checker_config()),
            cached: CachedCapChecker::new(cfg.cached_config()),
            degrading: DegradingPath::Cached(CachedCapChecker::new(cfg.cached_config())),
            elided: CapChecker::new(cfg.checker_config()),
            elided_cached: CachedCapChecker::new(cfg.cached_config()),
            shadow: BTreeMap::new(),
            spills: BTreeSet::new(),
            safe: BTreeSet::new(),
            segment: BTreeSet::new(),
            maps_live: false,
            expected: [false; 5],
        }
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> McConfig {
        self.cfg
    }

    /// Applies one op: replays it through the oracle and all five
    /// subjects, then checks refinement and the per-state invariants.
    ///
    /// # Errors
    ///
    /// The first [`Violation`] found, if any — the state may be mid-op
    /// inconsistent afterwards and must be discarded.
    pub fn apply(&mut self, op: McOp) -> Result<(), Violation> {
        match op {
            McOp::GrantFull { task, object } => {
                let cap = full_cap(task, object, self.cfg.objects);
                self.grant_op(op, task, object, cap, Some(GrantKind::Full))?;
            }
            McOp::GrantNarrow { task, object } => {
                let cap = narrow_cap(task, object, self.cfg.objects);
                self.grant_op(op, task, object, cap, Some(GrantKind::Narrow))?;
            }
            McOp::GrantSealed { task, object } => {
                let cap = full_cap(task, object, self.cfg.objects)
                    .seal(4)
                    .expect("unsealed caps seal");
                self.grant_op(op, task, object, cap, None)?;
            }
            McOp::GrantUntagged { task, object } => {
                let cap = full_cap(task, object, self.cfg.objects).clear_tag();
                self.grant_op(op, task, object, cap, None)?;
            }
            McOp::Derive { task, object } => self.derive_op(op, task, object)?,
            McOp::Read { task, object } => self.access_op(op, task, object, Probe::Read)?,
            McOp::ReadEdge { task, object } => self.access_op(op, task, object, Probe::ReadEdge)?,
            McOp::WriteHead { task, object } => {
                self.access_op(op, task, object, Probe::WriteHead)?;
            }
            McOp::ReadNoProv { task, object } => {
                self.access_op(op, task, object, Probe::ReadNoProv)?;
            }
            McOp::Spill { task, object } => {
                let slot = slot_base(task, object, self.cfg.objects);
                self.oracle
                    .spill(slot, slot, u128::from(slot) + u128::from(SLOT_BYTES));
                self.spills.insert((task, object));
            }
            McOp::Revoke { task } => {
                self.oracle.revoke_task(TaskId(u32::from(task)));
                let tid = TaskId(u32::from(task));
                self.uncached.revoke_task(tid);
                self.cached.revoke_task(tid);
                match &mut self.degrading {
                    DegradingPath::Cached(c) => c.revoke_task(tid),
                    DegradingPath::Fixed(f) => f.revoke_task(tid),
                }
                self.elided.revoke_task(tid);
                self.elided_cached.revoke_task(tid);
                self.shadow.retain(|&(t, _), _| t != task);
            }
            McOp::Sweep { task } => self.sweep_op(op, task)?,
            McOp::InstallVerdicts => {
                let mut map = StaticVerdictMap::new();
                self.safe.clear();
                for (&(t, o), &kind) in &self.shadow {
                    if kind == GrantKind::Full {
                        map.set(
                            TaskId(u32::from(t)),
                            ObjectId(u16::from(o)),
                            StaticVerdict::Safe,
                        );
                        self.safe.insert((t, o));
                    }
                }
                self.elided.set_static_verdicts(map.clone());
                self.elided_cached.set_static_verdicts(map);
                self.segment = self.safe.clone();
                self.maps_live = true;
            }
            McOp::InstallSegmentVerdicts => {
                // The driver's install-after-drop: re-install the
                // retained segment, filtered to pairs whose full grant
                // is still live (the verdict's dependency) — revoked or
                // narrowed pairs fall back to dynamic checking.
                let mut map = StaticVerdictMap::new();
                self.safe.clear();
                for &(t, o) in &self.segment {
                    if self.shadow.get(&(t, o)) == Some(&GrantKind::Full) {
                        map.set(
                            TaskId(u32::from(t)),
                            ObjectId(u16::from(o)),
                            StaticVerdict::Safe,
                        );
                        self.safe.insert((t, o));
                    }
                }
                self.elided.set_static_verdicts(map.clone());
                self.elided_cached.set_static_verdicts(map);
                self.maps_live = true;
            }
            McOp::ModeSwitch => {
                // The actuator's architectural effect: every checker is
                // rebuilt, live grants re-granted, verdict maps dropped,
                // latched flags cleared. (The Fine⇄Coarse address view is
                // a provenance-resolution detail orthogonal to the
                // properties checked here; the model stays Fine-judged.)
                self.uncached = self.rebuild_fixed();
                self.cached = self.rebuild_cached();
                self.degrading = match self.degrading {
                    DegradingPath::Cached(_) => DegradingPath::Cached(self.rebuild_cached()),
                    DegradingPath::Fixed(_) => DegradingPath::Fixed(self.rebuild_fixed()),
                };
                self.elided = self.rebuild_fixed();
                self.elided_cached = self.rebuild_cached();
                self.safe.clear();
                self.maps_live = false;
                self.expected = [false; 5];
                // `segment` deliberately survives: the retained ledger
                // lives driver-side, outside the rebuilt checkers.
            }
            McOp::Degrade => {
                if matches!(self.degrading, DegradingPath::Cached(_)) {
                    self.degrading = DegradingPath::Fixed(self.rebuild_fixed());
                    self.expected[2] = false;
                }
            }
            McOp::Repromote => {
                if matches!(self.degrading, DegradingPath::Fixed(_)) {
                    self.degrading = DegradingPath::Cached(self.rebuild_cached());
                    self.expected[2] = false;
                }
            }
        }
        self.invariants(op)
    }

    /// A fresh fixed-table checker with every live grant re-granted, in
    /// grant-model (BTreeMap) order — the driver's rebuild sequence.
    fn rebuild_fixed(&self) -> CapChecker {
        let mut checker = CapChecker::new(self.cfg.checker_config());
        for (&(t, o), &kind) in &self.shadow {
            checker
                .grant(
                    TaskId(u32::from(t)),
                    ObjectId(u16::from(o)),
                    &self.grant_cap(t, o, kind),
                )
                .expect("re-granting a live capability cannot fail");
        }
        checker
    }

    /// A fresh cached checker with every live grant re-granted.
    fn rebuild_cached(&self) -> CachedCapChecker {
        let mut checker = CachedCapChecker::new(self.cfg.cached_config());
        for (&(t, o), &kind) in &self.shadow {
            checker
                .grant(
                    TaskId(u32::from(t)),
                    ObjectId(u16::from(o)),
                    &self.grant_cap(t, o, kind),
                )
                .expect("re-granting a live capability cannot fail");
        }
        checker
    }

    fn grant_cap(&self, task: u8, object: u8, kind: GrantKind) -> Capability {
        match kind {
            GrantKind::Full => full_cap(task, object, self.cfg.objects),
            GrantKind::Narrow => narrow_cap(task, object, self.cfg.objects),
        }
    }

    fn grant_op(
        &mut self,
        op: McOp,
        task: u8,
        object: u8,
        cap: Capability,
        kind: Option<GrantKind>,
    ) -> Result<(), Violation> {
        let tid = TaskId(u32::from(task));
        let oid = ObjectId(u16::from(object));
        let spec = self.oracle.grant(tid, oid, &cap);
        let got = [
            self.uncached.grant(tid, oid, &cap),
            self.cached.grant(tid, oid, &cap),
            match &mut self.degrading {
                DegradingPath::Cached(c) => c.grant(tid, oid, &cap),
                DegradingPath::Fixed(f) => f.grant(tid, oid, &cap),
            },
            self.elided.grant(tid, oid, &cap),
            self.elided_cached.grant(tid, oid, &cap),
        ];
        for (i, g) in got.iter().enumerate() {
            if *g != spec {
                return Err(Violation {
                    subject: SUBJECTS[i].to_string(),
                    property: "grant-refinement",
                    detail: format!("{op:?}: oracle said {spec:?}, subject said {g:?}"),
                });
            }
        }
        if spec.is_ok() {
            if let Some(kind) = kind {
                self.shadow.insert((task, object), kind);
            }
        }
        Ok(())
    }

    /// Pure derivation algebra: monotonicity, seal/unseal round-trip,
    /// and the widening attempts that must fail. Never changes state.
    fn derive_op(&mut self, op: McOp, task: u8, object: u8) -> Result<(), Violation> {
        let fail = |detail: String| Violation {
            subject: "capability-algebra".to_string(),
            property: "derivation-monotonic",
            detail: format!("{op:?}: {detail}"),
        };
        let slot = slot_base(task, object, self.cfg.objects);
        let full = full_cap(task, object, self.cfg.objects);
        let narrow = narrow_cap(task, object, self.cfg.objects);
        if !Capability::root().dominates(&full) || !full.dominates(&narrow) {
            return Err(fail("derived capability escapes its parent".to_string()));
        }
        if narrow.set_bounds(slot, SLOT_BYTES).is_ok() {
            return Err(fail("bounds widened past the parent".to_string()));
        }
        let sealed = full
            .seal(4)
            .map_err(|e| fail(format!("seal refused: {e:?}")))?;
        if !sealed.is_sealed() {
            return Err(fail("seal left the capability unsealed".to_string()));
        }
        if sealed.set_bounds(slot, NARROW_BYTES).is_ok() {
            return Err(fail("sealed capability allowed derivation".to_string()));
        }
        let unsealed = sealed
            .unseal()
            .map_err(|e| fail(format!("unseal refused: {e:?}")))?;
        if unsealed != full {
            return Err(fail("seal/unseal round-trip changed authority".to_string()));
        }
        Ok(())
    }

    fn build_access(&self, task: u8, object: u8, probe: Probe) -> Access {
        let slot = slot_base(task, object, self.cfg.objects);
        let tid = TaskId(u32::from(task));
        let oid = ObjectId(u16::from(object));
        match probe {
            Probe::Read => Access::read(MasterId(0), tid, slot + 0x10, 8).with_object(oid),
            // Overflows the slot's top by exactly one byte.
            Probe::ReadEdge => {
                Access::read(MasterId(0), tid, slot + SLOT_BYTES - 7, 8).with_object(oid)
            }
            Probe::WriteHead => Access::write(MasterId(0), tid, slot, 8).with_object(oid),
            Probe::ReadNoProv => Access::read(MasterId(0), tid, slot + 0x10, 8),
        }
    }

    /// The independent live-grant judge: grants iff hardware provenance
    /// is present, the pair holds a live grant, the grant's permissions
    /// cover the probe, and the probe stays inside the grant's bounds.
    fn shadow_grants(&self, task: u8, object: u8, probe: Probe) -> bool {
        if probe == Probe::ReadNoProv {
            return false;
        }
        matches!(
            (self.shadow.get(&(task, object)), probe),
            (Some(GrantKind::Full), Probe::Read | Probe::WriteHead)
                | (Some(GrantKind::Narrow), Probe::Read)
        )
    }

    /// The fixed-table subject's verdict, with the planted off-by-one
    /// applied when enabled: a bounds denial is retried one byte shorter
    /// and waved through if the retry passes.
    fn uncached_verdict(&mut self, access: &Access) -> Verdict {
        let first = to_verdict(self.uncached.check(access));
        if self.cfg.planted == Some(PlantedBug::BoundsOffByOne)
            && matches!(
                first,
                Verdict::Denied(DenyReason::Capability(CapFault::BoundsViolation { .. }))
            )
            && access.len > 1
        {
            let mut shorter = *access;
            shorter.len -= 1;
            if self.uncached.check(&shorter).is_ok() {
                self.uncached.clear_exception_flag();
                return Verdict::Granted;
            }
        }
        first
    }

    fn access_op(&mut self, op: McOp, task: u8, object: u8, probe: Probe) -> Result<(), Violation> {
        let access = self.build_access(task, object, probe);
        let oracle_verdict = self.oracle.check(&access);
        // The oracle itself is cross-checked against the independent
        // live-grant model: no access may succeed without a live grant
        // covering it, and no covered access may be refused.
        if (oracle_verdict == Verdict::Granted) != self.shadow_grants(task, object, probe) {
            return Err(Violation {
                subject: "oracle".to_string(),
                property: "live-grant-soundness",
                detail: format!(
                    "{op:?}: oracle said {oracle_verdict:?} but the live-grant model disagrees"
                ),
            });
        }
        // Elided subjects wave waved pairs (with provenance) by design;
        // everything else must match the oracle verdict exactly.
        let waved = self.safe.contains(&(task, object)) && probe != Probe::ReadNoProv;
        let elided_spec = if waved {
            Verdict::Granted
        } else {
            oracle_verdict
        };
        let specs = [
            oracle_verdict,
            oracle_verdict,
            oracle_verdict,
            elided_spec,
            elided_spec,
        ];
        let got = [
            self.uncached_verdict(&access),
            to_verdict(self.cached.check(&access)),
            match &mut self.degrading {
                DegradingPath::Cached(c) => to_verdict(c.check(&access)),
                DegradingPath::Fixed(f) => to_verdict(f.check(&access)),
            },
            to_verdict(self.elided.check(&access)),
            to_verdict(self.elided_cached.check(&access)),
        ];
        for i in 0..SUBJECTS.len() {
            if got[i] != specs[i] {
                return Err(Violation {
                    subject: SUBJECTS[i].to_string(),
                    property: "verdict-refinement",
                    detail: format!(
                        "{op:?}: spec says {:?}, subject says {:?}",
                        specs[i], got[i]
                    ),
                });
            }
            if specs[i] != Verdict::Granted {
                self.expected[i] = true;
            }
        }
        // A granted DMA write is capability-unaware downstream: it clears
        // the tag of every granule it touches. WriteHead lands on the
        // pair's own spill granule.
        if probe == Probe::WriteHead && oracle_verdict == Verdict::Granted {
            self.oracle.dma_write(access.addr, access.len);
            self.spills.remove(&(task, object));
        }
        Ok(())
    }

    /// Revocation sweep over the task's whole slot region, cross-checked
    /// three ways: the oracle's tag model, the production
    /// [`sweep_revoked`] over a scratch tagged memory rebuilt from the
    /// abstract spill set, and the completeness property itself.
    fn sweep_op(&mut self, op: McOp, task: u8) -> Result<(), Violation> {
        let base = slot_base(task, 0, self.cfg.objects);
        let len = u64::from(self.cfg.objects) * SLOT_BYTES;
        self.oracle.sweep(base, len);

        let mut mem = TaggedMemory::new(mem_bytes(self.cfg.tasks, self.cfg.objects));
        for &(t, o) in &self.spills {
            let slot = slot_base(t, o, self.cfg.objects);
            mem.write_capability(slot, full_cap(t, o, self.cfg.objects).compress(), true)
                .expect("spill granules are aligned and in range");
        }
        let _ = sweep_revoked(&mut mem, base, len);

        let lo = u128::from(base);
        let hi = lo + u128::from(len);
        let objects = self.cfg.objects;
        self.spills.retain(|&(t, o)| {
            let cap_base = u128::from(slot_base(t, o, objects));
            let cap_top = cap_base + u128::from(SLOT_BYTES);
            !(cap_base < hi && cap_top > lo)
        });

        let surviving: BTreeSet<u64> = mem.tagged_capabilities().map(|(addr, _, _)| addr).collect();
        let expected: BTreeSet<u64> = self
            .spills
            .iter()
            .map(|&(t, o)| slot_base(t, o, objects))
            .collect();
        if surviving != expected {
            return Err(Violation {
                subject: "sweep_revoked".to_string(),
                property: "sweep-refinement",
                detail: format!(
                    "{op:?}: production sweep left tags at {surviving:?}, model expects {expected:?}"
                ),
            });
        }
        if mem
            .tagged_capabilities()
            .any(|(_, cap_base, cap_top)| u128::from(cap_base) < hi && cap_top > lo)
        {
            return Err(Violation {
                subject: "sweep_revoked".to_string(),
                property: "revocation-complete",
                detail: format!("{op:?}: a tag with authority over the swept region survived"),
            });
        }
        Ok(())
    }

    /// Per-state invariants, checked after every transition.
    fn invariants(&self, op: McOp) -> Result<(), Violation> {
        let coherent = [
            self.uncached.verdicts_coherent(),
            self.cached.verdicts_coherent(),
            match &self.degrading {
                DegradingPath::Cached(c) => c.verdicts_coherent(),
                DegradingPath::Fixed(f) => f.verdicts_coherent(),
            },
            self.elided.verdicts_coherent(),
            self.elided_cached.verdicts_coherent(),
        ];
        let actual = [
            self.uncached.exception_flag(),
            self.cached.exception_flag(),
            match &self.degrading {
                DegradingPath::Cached(c) => c.exception_flag(),
                DegradingPath::Fixed(f) => f.exception_flag(),
            },
            self.elided.exception_flag(),
            self.elided_cached.exception_flag(),
        ];
        for i in 0..SUBJECTS.len() {
            if !coherent[i] {
                return Err(Violation {
                    subject: SUBJECTS[i].to_string(),
                    property: "verdict-coherence",
                    detail: format!("{op:?}: verdict bitmap diverged from the installed map"),
                });
            }
            if actual[i] != self.expected[i] {
                return Err(Violation {
                    subject: SUBJECTS[i].to_string(),
                    property: "exception-flag",
                    detail: format!(
                        "{op:?}: exception flag is {}, model expects {}",
                        actual[i], self.expected[i]
                    ),
                });
            }
        }
        // `spills` iterates in (task, object) order and `slot_base` is
        // strictly increasing in that order, so both sides are sorted —
        // an allocation-free positional comparison suffices.
        let tags_agree = self.oracle.tags().keys().copied().eq(self
            .spills
            .iter()
            .map(|&(t, o)| slot_base(t, o, self.cfg.objects)));
        if !tags_agree {
            return Err(Violation {
                subject: "oracle".to_string(),
                property: "tag-model",
                detail: format!(
                    "{op:?}: oracle tags at {:?}, spill model expects {:?}",
                    self.oracle.tags().keys().collect::<Vec<_>>(),
                    self.spills
                ),
            });
        }
        Ok(())
    }

    /// Whether no [`Self::expected`] flag would newly latch if this probe
    /// ran now — i.e. every subject's spec is `Granted`, or the flags the
    /// denials would set are already set.
    fn probe_flags_inert(&self, task: u8, object: u8, probe: Probe) -> bool {
        let granted = self.shadow_grants(task, object, probe);
        let waved = self.safe.contains(&(task, object)) && probe != Probe::ReadNoProv;
        let plain_inert = granted || (self.expected[0] && self.expected[1] && self.expected[2]);
        let elided_inert = granted || waved || (self.expected[3] && self.expected[4]);
        plain_inert && elided_inert
    }

    /// True when applying `op` here provably cannot change any
    /// verdict-relevant state — the successor's canonical encoding equals
    /// this state's. The explorer then applies the op *in place* (the
    /// refinement and invariant checks still run in full) instead of
    /// cloning, and counts the transition as a revisit.
    ///
    /// The argument is the same one behind the canonical encoding: all
    /// future verdicts are a function of (grants, spills, safe set,
    /// retained segment, maps-live, expected flags, degradation kind).
    /// An op that leaves
    /// all of those fixed may mutate only verdict-irrelevant residue —
    /// cache LRU order, statistics, the oracle's latched flag — which the
    /// encoding already deliberately ignores.
    #[must_use]
    pub fn abstractly_inert(&self, op: McOp) -> bool {
        match op {
            // Pure ops never mutate anything anywhere.
            McOp::Derive { .. } | McOp::GrantSealed { .. } | McOp::GrantUntagged { .. } => true,
            McOp::Read { task, object } => self.probe_flags_inert(task, object, Probe::Read),
            McOp::ReadEdge { task, object } => {
                self.probe_flags_inert(task, object, Probe::ReadEdge)
            }
            McOp::ReadNoProv { task, object } => {
                self.probe_flags_inert(task, object, Probe::ReadNoProv)
            }
            // A granted head write also clears the pair's spilled tag.
            McOp::WriteHead { task, object } => {
                self.probe_flags_inert(task, object, Probe::WriteHead)
                    && !(self.shadow_grants(task, object, Probe::WriteHead)
                        && self.spills.contains(&(task, object)))
            }
            // Re-granting the grant a pair already holds replaces the
            // entry with an identical capability.
            McOp::GrantFull { task, object } => {
                self.shadow.get(&(task, object)) == Some(&GrantKind::Full)
            }
            McOp::GrantNarrow { task, object } => {
                self.shadow.get(&(task, object)) == Some(&GrantKind::Narrow)
            }
            McOp::Spill { task, object } => self.spills.contains(&(task, object)),
            McOp::Revoke { task } => !self.shadow.keys().any(|&(t, _)| t == task),
            // Slot windows are disjoint per task, so only the task's own
            // spills can intersect its sweep region.
            McOp::Sweep { task } => !self.spills.iter().any(|&(t, _)| t == task),
            McOp::InstallVerdicts => {
                self.maps_live
                    && self.segment == self.safe
                    && self
                        .shadow
                        .iter()
                        .filter(|&(_, &kind)| kind == GrantKind::Full)
                        .map(|(&pair, _)| pair)
                        .eq(self.safe.iter().copied())
            }
            McOp::InstallSegmentVerdicts => {
                self.maps_live
                    && self
                        .segment
                        .iter()
                        .copied()
                        .filter(|pair| self.shadow.get(pair) == Some(&GrantKind::Full))
                        .eq(self.safe.iter().copied())
            }
            McOp::ModeSwitch => false,
            McOp::Degrade => matches!(self.degrading, DegradingPath::Fixed(_)),
            McOp::Repromote => matches!(self.degrading, DegradingPath::Cached(_)),
        }
    }

    /// The canonical-encoding cell for one pair: grant kind (2 bits),
    /// spilled-tag bit, waved-safe bit, retained-segment bit.
    #[must_use]
    pub fn cell(&self, task: u8, object: u8) -> u8 {
        let grant = match self.shadow.get(&(task, object)) {
            None => 0u8,
            Some(GrantKind::Full) => 1,
            Some(GrantKind::Narrow) => 2,
        };
        let spill = u8::from(self.spills.contains(&(task, object)));
        let safe = u8::from(self.safe.contains(&(task, object)));
        let retained = u8::from(self.segment.contains(&(task, object)));
        grant | (spill << 2) | (safe << 3) | (retained << 4)
    }

    /// The permutation-invariant global bits: the five expected exception
    /// flags, the degradation-path kind, and whether verdict maps are
    /// installed. (The oracle's own latched flag is a monotone ratchet
    /// with no effect on any future verdict, so it is not encoded.)
    #[must_use]
    pub fn global_bits(&self) -> u8 {
        let mut bits = 0u8;
        for (i, &flag) in self.expected.iter().enumerate() {
            bits |= u8::from(flag) << i;
        }
        bits |= u8::from(matches!(self.degrading, DegradingPath::Fixed(_))) << 5;
        bits |= u8::from(self.maps_live) << 6;
        bits
    }

    /// Every subject's verdict on every probe of `(task, object)`,
    /// rendered deterministically as relabeling-invariant labels
    /// (`verdict_label` strips concrete addresses, which differ across
    /// renamings) — the probe suite behind the "equal canonical hash ⇒
    /// verdict-equivalent" property. Runs on clones; `self` is untouched.
    #[must_use]
    pub fn probe_pair(&self, task: u8, object: u8) -> String {
        let mut out = String::new();
        for probe in PROBES {
            let mut fork = self.clone();
            let access = fork.build_access(task, object, probe);
            let verdicts = [
                fork.uncached_verdict(&access),
                to_verdict(fork.cached.check(&access)),
                match &mut fork.degrading {
                    DegradingPath::Cached(c) => to_verdict(c.check(&access)),
                    DegradingPath::Fixed(f) => to_verdict(f.check(&access)),
                },
                to_verdict(fork.elided.check(&access)),
                to_verdict(fork.elided_cached.check(&access)),
            ];
            out.push('[');
            for (i, verdict) in verdicts.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(verdict_label(verdict));
            }
            out.push_str("];");
        }
        out
    }

    /// Captures the state via the checker snapshot hooks — the compact
    /// form the BFS frontier stores.
    #[must_use]
    pub fn save(&self) -> SavedState {
        SavedState {
            uncached: self.uncached.snapshot(),
            cached: self.cached.snapshot(),
            degrading: match &self.degrading {
                DegradingPath::Cached(c) => SavedDegrading::Cached(c.snapshot()),
                DegradingPath::Fixed(f) => SavedDegrading::Fixed(f.snapshot()),
            },
            elided: self.elided.snapshot(),
            elided_cached: self.elided_cached.snapshot(),
            oracle: self.oracle.clone(),
            shadow: self.shadow.clone(),
            spills: self.spills.clone(),
            safe: self.safe.clone(),
            segment: self.segment.clone(),
            maps_live: self.maps_live,
            expected: self.expected,
        }
    }

    /// Reconstructs a state from a [`SavedState`]: fresh checkers,
    /// verdict maps re-installed when they were live, then the snapshot
    /// hooks restore the architectural state.
    #[must_use]
    pub fn from_saved(cfg: McConfig, saved: &SavedState) -> McState {
        let mut state = McState::new(cfg);
        if saved.maps_live {
            let mut map = StaticVerdictMap::new();
            for &(t, o) in &saved.safe {
                map.set(
                    TaskId(u32::from(t)),
                    ObjectId(u16::from(o)),
                    StaticVerdict::Safe,
                );
            }
            state.elided.set_static_verdicts(map.clone());
            state.elided_cached.set_static_verdicts(map);
        }
        state.uncached.restore(&saved.uncached);
        state.cached.restore(&saved.cached);
        state.degrading = match &saved.degrading {
            SavedDegrading::Cached(snap) => {
                let mut c = CachedCapChecker::new(cfg.cached_config());
                c.restore(snap);
                DegradingPath::Cached(c)
            }
            SavedDegrading::Fixed(snap) => {
                let mut f = CapChecker::new(cfg.checker_config());
                f.restore(snap);
                DegradingPath::Fixed(f)
            }
        };
        state.elided.restore(&saved.elided);
        state.elided_cached.restore(&saved.elided_cached);
        state.oracle = saved.oracle.clone();
        state.shadow = saved.shadow.clone();
        state.spills = saved.spills.clone();
        state.safe = saved.safe.clone();
        state.segment = saved.segment.clone();
        state.maps_live = saved.maps_live;
        state.expected = saved.expected;
        state
    }

    /// Replays `ops` from the initial state, returning the first
    /// violation — the predicate behind ddmin shrinking.
    #[must_use]
    pub fn replay(cfg: McConfig, ops: &[McOp]) -> Option<Violation> {
        let mut state = McState::new(cfg);
        for &op in ops {
            if let Err(violation) = state.apply(op) {
                return Some(violation);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::alphabet;

    #[test]
    fn clean_ops_produce_no_violation() {
        let cfg = McConfig::new(2, 2);
        let ops = [
            McOp::GrantFull { task: 0, object: 0 },
            McOp::Read { task: 0, object: 0 },
            McOp::ReadEdge { task: 0, object: 0 },
            McOp::Spill { task: 0, object: 1 },
            McOp::InstallVerdicts,
            McOp::Read { task: 0, object: 0 },
            McOp::WriteHead { task: 0, object: 0 },
            McOp::Sweep { task: 0 },
            McOp::Degrade,
            McOp::Read { task: 0, object: 0 },
            McOp::ModeSwitch,
            // The install-after-drop interleaving: the rebuild dropped
            // the maps, the retained segment restores them.
            McOp::InstallSegmentVerdicts,
            McOp::Read { task: 0, object: 0 },
            McOp::Repromote,
            McOp::Revoke { task: 0 },
            McOp::InstallSegmentVerdicts,
            McOp::Read { task: 0, object: 0 },
        ];
        assert_eq!(McState::replay(cfg, &ops), None);
    }

    #[test]
    fn segment_reinstall_restores_waving_after_mode_switch() {
        let cfg = McConfig::new(2, 2);
        let mut state = McState::new(cfg);
        state.apply(McOp::GrantFull { task: 0, object: 0 }).unwrap();
        state.apply(McOp::InstallVerdicts).unwrap();
        assert_eq!(state.cell(0, 0) >> 3, 0b11, "safe + retained bits set");
        state.apply(McOp::ModeSwitch).unwrap();
        assert_eq!(state.cell(0, 0) >> 3, 0b10, "safe dropped, segment kept");
        assert_eq!(state.global_bits() >> 6, 0, "maps not live");
        state.apply(McOp::InstallSegmentVerdicts).unwrap();
        assert_eq!(state.cell(0, 0) >> 3, 0b11, "re-install restores waving");
        assert_eq!(state.global_bits() >> 6, 1);
        // Re-installing again is abstractly inert; revoking the grant
        // then re-installing filters the pair out (dependency gone).
        assert!(state.abstractly_inert(McOp::InstallSegmentVerdicts));
        state.apply(McOp::Revoke { task: 0 }).unwrap();
        state.apply(McOp::InstallSegmentVerdicts).unwrap();
        assert_eq!(
            state.cell(0, 0) >> 3,
            0b10,
            "revoked pair falls back to dynamic checking"
        );
    }

    #[test]
    fn every_alphabet_op_applies_cleanly_from_scratch() {
        let cfg = McConfig::new(2, 3);
        for op in alphabet(2, 3) {
            let mut state = McState::new(cfg);
            assert_eq!(state.apply(op), Ok(()), "op {op:?} violated from scratch");
        }
    }

    #[test]
    fn planted_off_by_one_is_caught_by_the_edge_probe() {
        let cfg = McConfig::new(2, 2).with_planted(PlantedBug::BoundsOffByOne);
        let ops = [
            McOp::GrantFull { task: 0, object: 0 },
            McOp::ReadEdge { task: 0, object: 0 },
        ];
        let violation = McState::replay(cfg, &ops).expect("the planted bug must be caught");
        assert_eq!(violation.property, "verdict-refinement");
        assert_eq!(violation.subject, "CapChecker");
    }

    #[test]
    fn save_restore_round_trips_cells_and_probes() {
        let cfg = McConfig::new(2, 2);
        let mut state = McState::new(cfg);
        for op in [
            McOp::GrantFull { task: 0, object: 0 },
            McOp::GrantNarrow { task: 1, object: 1 },
            McOp::Spill { task: 1, object: 0 },
            McOp::InstallVerdicts,
            McOp::ReadEdge { task: 0, object: 0 },
            McOp::Degrade,
        ] {
            state.apply(op).unwrap();
        }
        let restored = McState::from_saved(cfg, &state.save());
        for t in 0..2 {
            for o in 0..2 {
                assert_eq!(state.cell(t, o), restored.cell(t, o));
                assert_eq!(state.probe_pair(t, o), restored.probe_pair(t, o));
            }
        }
        assert_eq!(state.global_bits(), restored.global_bits());
        // And the restored state keeps evolving identically.
        let op = McOp::Read { task: 1, object: 1 };
        let mut a = state;
        let mut b = restored;
        assert_eq!(a.apply(op), b.apply(op));
        assert_eq!(a.global_bits(), b.global_bits());
    }
}
