//! Property tests for the symmetry reduction.
//!
//! Two claims carry the model checker's soundness, and both are
//! randomized here well beyond what the unit tests pin:
//!
//! 1. **Equivariance** — relabeling task/object ids in an op sequence
//!    lands in the same canonical encoding (and so the same FNV label).
//!    This is exactly the property that lets BFS expand one orbit
//!    representative instead of every relabeled twin.
//! 2. **Abstraction adequacy** — states with equal canonical encodings
//!    are indistinguishable under the full probe suite: every subject
//!    gives the same verdict on every probe of every (relabeled) pair.
//!    Dedup on the encoding therefore cannot merge two states a checker
//!    bug could tell apart.

use capcheri_mc::{alphabet, canonicalize, fnv_hash, McConfig, McOp, McState};
use proptest::prelude::*;

const TASKS: u8 = 2;
const OBJECTS: u8 = 3;

/// All permutations of `0..n` (n ≤ 3 here), fixed order.
fn perms(n: u8) -> Vec<Vec<u8>> {
    match n {
        2 => vec![vec![0, 1], vec![1, 0]],
        3 => vec![
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ],
        _ => panic!("unsupported size {n}"),
    }
}

fn inverse(perm: &[u8]) -> Vec<u8> {
    let mut inv = vec![0u8; perm.len()];
    for (old, &new) in perm.iter().enumerate() {
        inv[usize::from(new)] = old as u8;
    }
    inv
}

/// Builds a state by applying ops drawn by index from the alphabet.
/// The clean model never violates, so every op applies.
fn run(ops: &[McOp]) -> McState {
    let mut state = McState::new(McConfig::new(TASKS, OBJECTS));
    for &op in ops {
        state
            .apply(op)
            .expect("clean model ops apply without violation");
    }
    state
}

fn arb_ops() -> impl Strategy<Value = Vec<McOp>> {
    let all = alphabet(TASKS, OBJECTS);
    let n = all.len();
    prop::collection::vec(0..n, 0..12)
        .prop_map(move |ixs| ixs.into_iter().map(|i| all[i]).collect())
}

proptest! {
    /// Permuting every id in an op sequence yields the same canonical
    /// encoding and the same FNV label — transition commutes with
    /// relabeling, so orbits collapse to one representative.
    #[test]
    fn relabeled_sequences_share_canonical_encoding(
        ops in arb_ops(),
        tp in 0usize..2,
        op_ix in 0usize..6,
    ) {
        let task_perm = &perms(TASKS)[tp];
        let object_perm = &perms(OBJECTS)[op_ix];
        let a = run(&ops);
        let relabeled: Vec<McOp> =
            ops.iter().map(|op| op.relabel(task_perm, object_perm)).collect();
        let b = run(&relabeled);
        let ca = canonicalize(&a);
        let cb = canonicalize(&b);
        prop_assert_eq!(&ca.bytes, &cb.bytes);
        prop_assert_eq!(fnv_hash(&ca.bytes), fnv_hash(&cb.bytes));
    }

    /// Equal canonical encodings imply *verdict equivalence*: under each
    /// state's own minimizing permutation, every relabeled pair answers
    /// the whole probe suite identically across all five subjects. This
    /// is the license to dedup — the encoding loses nothing a probe
    /// could observe.
    #[test]
    fn equal_encodings_are_probe_equivalent(
        ops in arb_ops(),
        tp in 0usize..2,
        op_ix in 0usize..6,
    ) {
        let task_perm = &perms(TASKS)[tp];
        let object_perm = &perms(OBJECTS)[op_ix];
        let a = run(&ops);
        let relabeled: Vec<McOp> =
            ops.iter().map(|op| op.relabel(task_perm, object_perm)).collect();
        let b = run(&relabeled);
        let ca = canonicalize(&a);
        let cb = canonicalize(&b);
        prop_assert_eq!(&ca.bytes, &cb.bytes, "precondition: same orbit");
        // Map each canonical position back through each state's own
        // minimizing permutation; the concrete pairs must probe alike.
        let (ia_t, ia_o) = (inverse(&ca.task_perm), inverse(&ca.object_perm));
        let (ib_t, ib_o) = (inverse(&cb.task_perm), inverse(&cb.object_perm));
        for nt in 0..TASKS {
            for no in 0..OBJECTS {
                let pa = a.probe_pair(ia_t[usize::from(nt)], ia_o[usize::from(no)]);
                let pb = b.probe_pair(ib_t[usize::from(nt)], ib_o[usize::from(no)]);
                prop_assert_eq!(pa, pb, "probe divergence at canonical pair ({}, {})", nt, no);
            }
        }
    }

    /// Replaying any clean-model sequence twice gives byte-identical
    /// canonical encodings — the model itself is deterministic, which
    /// the byte-determinism of whole reports rests on.
    #[test]
    fn replay_is_deterministic(ops in arb_ops()) {
        let a = run(&ops);
        let b = run(&ops);
        prop_assert_eq!(canonicalize(&a).bytes, canonicalize(&b).bytes);
        for t in 0..TASKS {
            for o in 0..OBJECTS {
                prop_assert_eq!(a.probe_pair(t, o), b.probe_pair(t, o));
            }
        }
    }
}
