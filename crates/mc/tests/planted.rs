//! The planted-bug kill test: proof the model checker catches a real,
//! historical-shaped defect.
//!
//! `PlantedBug::BoundsOffByOne` re-introduces (behind a test-only hook)
//! the classic fencepost: a one-byte bounds overflow that is "retried"
//! one byte shorter and waved through. The checker must find it at small
//! depth, and the ddmin-shrunk counterexample — plus the paste-ready
//! regression test it renders — is pinned as a golden snapshot so the
//! kill stays visibly short forever. Regenerate after an intentional
//! model change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p capcheri-mc --test planted
//! ```

use capcheri_mc::{explore, regression_test, ExploreConfig, McState, PlantedBug};
use std::fs;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, rendered: &str) {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1");
    let path = golden_path(name);
    if update {
        fs::create_dir_all(path.parent().expect("golden path has a parent"))
            .expect("golden dir is creatable");
        fs::write(&path, rendered).expect("golden dir is writable");
        return;
    }
    let pinned = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        pinned, rendered,
        "{name} drifted from its golden snapshot;\n\
         if the change is intentional, regenerate with\n\
         UPDATE_GOLDEN=1 cargo test -p capcheri-mc --test planted\n\
         and commit the rewritten file"
    );
}

/// The planted off-by-one must be found in a bounded, shallow search,
/// its shrunk repro must be short (≤ 6 ops), must still reproduce from
/// scratch, and both the shrunk sequence and its rendered regression
/// test are pinned byte-for-byte.
#[test]
fn planted_off_by_one_is_killed_and_the_shrunk_repro_is_pinned() {
    let cfg = ExploreConfig {
        depth: 4,
        tasks: 2,
        objects: 2,
        planted: Some(PlantedBug::BoundsOffByOne),
        threads: 1,
    };
    let result = explore(cfg);
    let found = result
        .violation
        .as_ref()
        .expect("the planted off-by-one must be found by depth 4");

    // The bug is a checker saying Granted where the oracle denies — a
    // verdict-refinement break, not an invariant or oracle failure.
    assert_eq!(found.violation.property, "verdict-refinement");
    assert!(
        found.shrunk.len() <= 6,
        "shrunk repro must stay paste-ready short, got {} ops: {:?}",
        found.shrunk.len(),
        found.shrunk
    );
    assert!(
        found.shrunk.len() <= found.path.len(),
        "shrinking may never grow the path"
    );

    // The shrunk sequence is a *genuine* counterexample: replaying it
    // from the initial state reproduces a violation, and replaying it
    // without the planted bug is clean (the model itself is not broken).
    let mc_cfg = capcheri_mc::McConfig::new(2, 2).with_planted(PlantedBug::BoundsOffByOne);
    assert!(
        McState::replay(mc_cfg, &found.shrunk).is_some(),
        "shrunk counterexample must reproduce from scratch"
    );
    let clean_cfg = capcheri_mc::McConfig::new(2, 2);
    assert_eq!(
        McState::replay(clean_cfg, &found.shrunk),
        None,
        "the counterexample must vanish once the planted bug is removed"
    );

    // Pin the shrunk ops and the rendered regression test.
    let mut shrunk_doc = String::new();
    for op in &found.shrunk {
        shrunk_doc.push_str(&format!("{op:?}\n"));
    }
    check_golden("planted_off_by_one.ops.txt", &shrunk_doc);
    check_golden(
        "planted_off_by_one.regression.rs.txt",
        &regression_test(&found.shrunk),
    );
}

/// Without the planted hook the exact same exploration is clean — the
/// kill test above cannot be passing on a broken model.
#[test]
fn the_same_search_without_the_plant_is_clean() {
    let cfg = ExploreConfig {
        depth: 4,
        tasks: 2,
        objects: 2,
        planted: None,
        threads: 1,
    };
    let result = explore(cfg);
    assert!(result.violation.is_none());
}
