//! Chrome trace-event export — the JSON format `chrome://tracing` and
//! Perfetto (`ui.perfetto.dev`) load directly.
//!
//! Timestamps (`ts`) are virtual cycles, not microseconds; Perfetto only
//! needs them monotonically non-decreasing, which the exporter guarantees
//! by stably sorting events by cycle. Each event source renders on its
//! own named track (bus, L1, checker, driver, tasks).

use crate::event::{Event, EventKind};
use crate::json::JsonWriter;

/// The process id every event carries (single simulated system).
const PID: u64 = 0;

fn tid(track: &str) -> u64 {
    match track {
        "driver" => 0,
        "checker" => 1,
        "bus" => 2,
        "l1" => 3,
        "fault" => 5,
        "recovery" => 6,
        "conformance" => 7,
        _ => 4, // "tasks"
    }
}

fn write_common(w: &mut JsonWriter, name: &str, ph: &str, track: &str, cycle: u64) {
    w.key("name");
    w.string(name);
    w.key("ph");
    w.string(ph);
    w.key("pid");
    w.u64(PID);
    w.key("tid");
    w.u64(tid(track));
    w.key("ts");
    w.u64(cycle);
}

fn write_event(w: &mut JsonWriter, event: &Event) {
    w.begin_object();
    match event.kind {
        EventKind::BusGrant {
            lane,
            task,
            beats,
            waited,
        } => {
            // A complete ("X") event: the grant occupies the bus for
            // `beats` cycles, so it renders as a slice, not a tick.
            write_common(w, event.kind.name(), "X", event.kind.track(), event.cycle);
            w.key("dur");
            w.u64(beats);
            w.key("args");
            w.begin_object();
            w.key("lane");
            w.u64(u64::from(lane));
            w.key("task");
            w.u64(u64::from(task));
            w.key("beats");
            w.u64(beats);
            w.key("waited");
            w.u64(waited);
            w.end_object();
        }
        kind => {
            write_common(w, kind.name(), "i", kind.track(), event.cycle);
            w.key("s");
            w.string("t");
            w.key("args");
            w.begin_object();
            match kind {
                EventKind::BusGrant { .. } => unreachable!("handled above"),
                EventKind::L1Access { hit } => {
                    w.key("hit");
                    w.bool(hit);
                }
                EventKind::TaskStart { task } | EventKind::TaskEnd { task } => {
                    w.key("task");
                    w.u64(u64::from(task));
                }
                EventKind::CheckerCheck {
                    task,
                    object,
                    granted,
                } => {
                    w.key("task");
                    w.u64(u64::from(task));
                    w.key("object");
                    w.u64(u64::from(object));
                    w.key("granted");
                    w.bool(granted);
                }
                EventKind::CheckerStall { task } => {
                    w.key("task");
                    w.u64(u64::from(task));
                }
                EventKind::CheckerEvict { task, entries } => {
                    w.key("task");
                    w.u64(u64::from(task));
                    w.key("entries");
                    w.u64(entries);
                }
                EventKind::CheckerException { task, object } => {
                    w.key("task");
                    w.u64(u64::from(task));
                    w.key("object");
                    w.u64(u64::from(object));
                }
                EventKind::MmioCapInstall { task, object, ok } => {
                    w.key("task");
                    w.u64(u64::from(task));
                    w.key("object");
                    w.u64(u64::from(object));
                    w.key("ok");
                    w.bool(ok);
                }
                EventKind::DriverPhase { task, phase } => {
                    w.key("task");
                    w.u64(u64::from(task));
                    w.key("phase");
                    w.string(phase.label());
                }
                EventKind::FaultInjected { task, fault } => {
                    w.key("task");
                    w.u64(u64::from(task));
                    w.key("fault");
                    w.string(fault.label());
                }
                EventKind::WatchdogAbort { task, ops } => {
                    w.key("task");
                    w.u64(u64::from(task));
                    w.key("ops");
                    w.u64(ops);
                }
                EventKind::TaskRetry {
                    task,
                    attempt,
                    backoff,
                } => {
                    w.key("task");
                    w.u64(u64::from(task));
                    w.key("attempt");
                    w.u64(u64::from(attempt));
                    w.key("backoff");
                    w.u64(backoff);
                }
                EventKind::EngineQuarantined { fu, faults } => {
                    w.key("fu");
                    w.u64(u64::from(fu));
                    w.key("faults");
                    w.u64(u64::from(faults));
                }
                EventKind::CheckerDegraded {
                    detections,
                    regranted,
                } => {
                    w.key("detections");
                    w.u64(detections);
                    w.key("regranted");
                    w.u64(regranted);
                }
                EventKind::TagAudit { task, cleared } => {
                    w.key("task");
                    w.u64(u64::from(task));
                    w.key("cleared");
                    w.u64(cleared);
                }
                EventKind::WorkerPanic { worker } => {
                    w.key("worker");
                    w.u64(u64::from(worker));
                }
                EventKind::ConformanceDivergence { op } => {
                    w.key("op");
                    w.u64(op);
                }
                EventKind::ConformanceComplete { ops, divergences } => {
                    w.key("ops");
                    w.u64(ops);
                    w.key("divergences");
                    w.u64(divergences);
                }
                EventKind::AnalysisComplete {
                    safe,
                    flagged,
                    dynamic,
                } => {
                    w.key("safe");
                    w.u64(safe);
                    w.key("flagged");
                    w.u64(flagged);
                    w.key("dynamic");
                    w.u64(dynamic);
                }
                EventKind::FlowAnalysisComplete {
                    segments,
                    reused,
                    units,
                } => {
                    w.key("segments");
                    w.u64(segments);
                    w.key("reused");
                    w.u64(reused);
                    w.key("units");
                    w.u64(units);
                }
                EventKind::StaticVerdictsInstalled { safe_pairs }
                | EventKind::SegmentVerdictsReinstalled { safe_pairs } => {
                    w.key("safe_pairs");
                    w.u64(safe_pairs);
                }
                EventKind::ChecksElided { task, count } => {
                    w.key("task");
                    w.u64(u64::from(task));
                    w.key("count");
                    w.u64(count);
                }
                EventKind::AdaptDecision { epoch, rule } => {
                    w.key("epoch");
                    w.u64(u64::from(epoch));
                    w.key("rule");
                    w.string(rule.label());
                }
                EventKind::ProbationStarted { epoch, window } => {
                    w.key("epoch");
                    w.u64(u64::from(epoch));
                    w.key("window");
                    w.u64(u64::from(window));
                }
                EventKind::ProbationPassed { epoch } => {
                    w.key("epoch");
                    w.u64(u64::from(epoch));
                }
                EventKind::ProbationFailed { epoch, failures } => {
                    w.key("epoch");
                    w.u64(u64::from(epoch));
                    w.key("failures");
                    w.u64(u64::from(failures));
                }
                EventKind::EngineReleased { fu } => {
                    w.key("fu");
                    w.u64(u64::from(fu));
                }
                EventKind::CheckerRepromoted { regranted } => {
                    w.key("regranted");
                    w.u64(regranted);
                }
                EventKind::CheckerModeSwitched { coarse, regranted } => {
                    w.key("coarse");
                    w.bool(coarse);
                    w.key("regranted");
                    w.u64(regranted);
                }
                EventKind::ModelCheckDepth {
                    depth,
                    states,
                    frontier,
                } => {
                    w.key("depth");
                    w.u64(u64::from(depth));
                    w.key("states");
                    w.u64(states);
                    w.key("frontier");
                    w.u64(frontier);
                }
                EventKind::ModelCheckComplete { states, violations } => {
                    w.key("states");
                    w.u64(states);
                    w.key("violations");
                    w.u64(violations);
                }
            }
            w.end_object();
        }
    }
    w.end_object();
}

fn write_thread_name(w: &mut JsonWriter, track: &str) {
    w.begin_object();
    w.key("name");
    w.string("thread_name");
    w.key("ph");
    w.string("M");
    w.key("pid");
    w.u64(PID);
    w.key("tid");
    w.u64(tid(track));
    w.key("args");
    w.begin_object();
    w.key("name");
    w.string(track);
    w.end_object();
    w.end_object();
}

/// Renders `events` as one Chrome trace-event JSON document.
///
/// Events are stably sorted by cycle, so `ts` is monotonically
/// non-decreasing and the output is byte-identical for identical inputs.
#[must_use]
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by_key(|e| e.cycle);

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("displayTimeUnit");
    w.string("ns");
    w.key("traceEvents");
    w.begin_array();
    // Process/thread naming metadata first (no timestamps).
    w.begin_object();
    w.key("name");
    w.string("process_name");
    w.key("ph");
    w.string("M");
    w.key("pid");
    w.u64(PID);
    w.key("args");
    w.begin_object();
    w.key("name");
    w.string("capcheri-sim");
    w.end_object();
    w.end_object();
    for track in [
        "driver",
        "checker",
        "bus",
        "l1",
        "tasks",
        "fault",
        "recovery",
        "conformance",
    ] {
        write_thread_name(&mut w, track);
    }
    for event in sorted {
        write_event(&mut w, event);
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;
    use crate::json::validate;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                cycle: 30,
                kind: EventKind::BusGrant {
                    lane: 1,
                    task: 0,
                    beats: 2,
                    waited: 4,
                },
            },
            Event {
                cycle: 0,
                kind: EventKind::DriverPhase {
                    task: 1,
                    phase: Phase::Allocate,
                },
            },
            Event {
                cycle: 12,
                kind: EventKind::L1Access { hit: false },
            },
        ]
    }

    #[test]
    fn export_is_well_formed_and_sorted() {
        let json = chrome_trace_json(&sample_events());
        validate(&json).unwrap();
        // ts values appear in non-decreasing order.
        let ts: Vec<u64> = json
            .split("\"ts\":")
            .skip(1)
            .map(|rest| {
                rest.bytes()
                    .take_while(u8::is_ascii_digit)
                    .fold(0u64, |acc, b| acc * 10 + u64::from(b - b'0'))
            })
            .collect();
        assert_eq!(ts, vec![0, 12, 30]);
        assert!(json.contains("\"dur\":2"), "bus grant is a complete event");
    }

    #[test]
    fn export_is_byte_deterministic() {
        let events = sample_events();
        assert_eq!(chrome_trace_json(&events), chrome_trace_json(&events));
    }

    #[test]
    fn empty_trace_is_still_loadable() {
        let json = chrome_trace_json(&[]);
        validate(&json).unwrap();
        assert!(json.contains("traceEvents"));
    }
}
