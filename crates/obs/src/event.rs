//! The event taxonomy: everything the simulator can say about itself.

use std::fmt;

/// A driver lifecycle phase — Figure 6's state machine, as seen by the
/// trusted driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Allocation ①: FU search, buffer allocation, capability import.
    Allocate,
    /// Kernel execution through the protected path.
    Execute,
    /// Deallocation ②: eviction, register clearing, scrub, report.
    Deallocate,
}

impl Phase {
    /// Stable lowercase label used in exports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::Allocate => "allocate",
            Phase::Execute => "execute",
            Phase::Deallocate => "deallocate",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The fault taxonomy the fault-injection harness can draw from.
///
/// Lives here — not in `hetsim::fault` — because every layer that reports
/// a fault (engines, memory, the cached checker, the driver) funnels it
/// through the same [`EventKind::FaultInjected`] event, and the taxonomy
/// must be shared without a dependency cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// A forged tag bit set on a granule of `TaggedMemory`.
    TagFlip,
    /// An unsolicited engine store far outside any granted buffer.
    RogueDma,
    /// Corrupted address lines on the engine's own transfers (persistent).
    GarbledDma,
    /// The engine stops making progress (persistent until quarantined).
    EngineHang,
    /// A bus grant that never arrives — the transfer stalls forever.
    BusStall,
    /// A beat lost on the interconnect; the transfer aborts cleanly.
    DroppedBeat,
    /// Bit flips in a `CachedCapChecker` cache line.
    CacheCorrupt,
}

impl FaultKind {
    /// Every kind, in the stable order specs and reports use.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::TagFlip,
        FaultKind::RogueDma,
        FaultKind::GarbledDma,
        FaultKind::EngineHang,
        FaultKind::BusStall,
        FaultKind::DroppedBeat,
        FaultKind::CacheCorrupt,
    ];

    /// Stable kebab-case label used in specs, events, and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::TagFlip => "tag-flip",
            FaultKind::RogueDma => "rogue-dma",
            FaultKind::GarbledDma => "garbled-dma",
            FaultKind::EngineHang => "engine-hang",
            FaultKind::BusStall => "bus-stall",
            FaultKind::DroppedBeat => "dropped-beat",
            FaultKind::CacheCorrupt => "cache-corrupt",
        }
    }

    /// Parses a [`label`](FaultKind::label) back into the kind.
    #[must_use]
    pub fn from_label(label: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The adaptive controller's rule taxonomy: which policy rule fired to
/// produce an [`EventKind::AdaptDecision`].
///
/// Lives here — like [`FaultKind`] — because the controller (`capchecker`),
/// the reports (`capcheri-bench`), and the threat harness all name the
/// same rules and the taxonomy must be shared without a dependency cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AdaptRule {
    /// Check-stall share crossed the up threshold: switch Fine → Coarse.
    StallUp,
    /// Check-stall share fell below the down threshold: switch back.
    StallDown,
    /// Corruption signal crossed the threshold: degrade the cached
    /// checker to the fixed-table design and start probation.
    CacheDegrade,
    /// A clean probation window elapsed: re-promote to the cached design.
    CacheRepromote,
    /// The cache flapped past its failure budget: degraded for good.
    CacheLatch,
    /// A quarantined FU's probation window elapsed: release it.
    FuRelease,
    /// A released FU faulted again: back to quarantine.
    FuRequarantine,
    /// An FU exhausted its re-quarantine budget: quarantined for good.
    FuLatch,
}

impl AdaptRule {
    /// Every rule, in the stable order reports use.
    pub const ALL: [AdaptRule; 8] = [
        AdaptRule::StallUp,
        AdaptRule::StallDown,
        AdaptRule::CacheDegrade,
        AdaptRule::CacheRepromote,
        AdaptRule::CacheLatch,
        AdaptRule::FuRelease,
        AdaptRule::FuRequarantine,
        AdaptRule::FuLatch,
    ];

    /// Stable kebab-case label used in decision traces and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AdaptRule::StallUp => "stall-up",
            AdaptRule::StallDown => "stall-down",
            AdaptRule::CacheDegrade => "cache-degrade",
            AdaptRule::CacheRepromote => "cache-repromote",
            AdaptRule::CacheLatch => "cache-latch",
            AdaptRule::FuRelease => "fu-release",
            AdaptRule::FuRequarantine => "fu-requarantine",
            AdaptRule::FuLatch => "fu-latch",
        }
    }
}

impl fmt::Display for AdaptRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What happened. Each variant carries only plain integers so events are
/// `Copy` and recording costs one `Vec` push.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// The shared interconnect granted a lane's request.
    BusGrant {
        /// Global lane index in the simulated system.
        lane: u32,
        /// Owning task (input order of the timing model).
        task: u32,
        /// Beats the grant occupies the bus for.
        beats: u64,
        /// Cycles the request waited behind other traffic (contention).
        waited: u64,
    },
    /// One L1 data-cache lookup on the CPU model.
    L1Access {
        /// `true` on hit, `false` on miss.
        hit: bool,
    },
    /// A task began issuing in the timing model.
    TaskStart {
        /// Task index (input order of the timing model).
        task: u32,
    },
    /// A task's last operation drained.
    TaskEnd {
        /// Task index (input order of the timing model).
        task: u32,
    },
    /// The protection mechanism vetted one request.
    CheckerCheck {
        /// Requesting task ID.
        task: u32,
        /// Object the request claimed.
        object: u16,
        /// `true` when the request was granted.
        granted: bool,
    },
    /// A capability install found the table full (the hardware stall).
    CheckerStall {
        /// Task whose install stalled.
        task: u32,
    },
    /// A task's entries were evicted from the capability table.
    CheckerEvict {
        /// Task whose entries were evicted.
        task: u32,
        /// Entries freed.
        entries: u64,
    },
    /// The checker latched an exception (denied request).
    CheckerException {
        /// Offending task ID.
        task: u32,
        /// Object whose entry carries the exception bit.
        object: u16,
    },
    /// The driver staged a capability over the MMIO import interface.
    MmioCapInstall {
        /// Destination task ID.
        task: u32,
        /// Destination object slot.
        object: u16,
        /// `true` when the commit reported `STATUS_OK`.
        ok: bool,
    },
    /// The driver crossed a Figure 6 phase boundary for a task.
    DriverPhase {
        /// Task ID.
        task: u32,
        /// The phase being entered.
        phase: Phase,
    },
    /// The fault harness injected a fault into the running system.
    FaultInjected {
        /// Task the fault targets.
        task: u32,
        /// What was injected.
        fault: FaultKind,
    },
    /// The per-task watchdog expired and the driver aborted the task.
    WatchdogAbort {
        /// Aborted task ID.
        task: u32,
        /// Operation budget the task had burned when aborted.
        ops: u64,
    },
    /// The driver is re-running a task after a fault, with backoff.
    TaskRetry {
        /// Retried task ID.
        task: u32,
        /// Attempt number (2 = first retry).
        attempt: u32,
        /// Backoff the driver clock waited before this attempt.
        backoff: u64,
    },
    /// The driver quarantined an FU that faulted repeatedly.
    EngineQuarantined {
        /// Quarantined FU index.
        fu: u32,
        /// Consecutive faults observed on it.
        faults: u32,
    },
    /// The driver replaced a corrupted cached checker with the uncached
    /// fixed-table checker, re-granting every live capability.
    CheckerDegraded {
        /// Corruption detections that triggered the downgrade.
        detections: u64,
        /// Capabilities re-granted into the replacement checker.
        regranted: u64,
    },
    /// A driver tag audit cleared forged tags from a task's buffers.
    TagAudit {
        /// Audited task ID.
        task: u32,
        /// Forged tags found and cleared.
        cleared: u64,
    },
    /// A parallel-harness worker thread panicked. Recorded by the worker
    /// pool on the coordinating thread before the panic payload is
    /// rethrown, so the failure is on the record even when the process
    /// unwinds.
    WorkerPanic {
        /// Index of the panicking worker thread.
        worker: u32,
    },
    /// The differential conformance harness saw an implementation
    /// disagree with the golden oracle on one operation.
    ConformanceDivergence {
        /// Index of the diverging operation in the stream.
        op: u64,
    },
    /// A differential conformance run finished.
    ConformanceComplete {
        /// Operations replayed through every implementation.
        ops: u64,
        /// Total divergences found (0 on a clean run).
        divergences: u64,
    },
    /// The static capability-flow analyzer finished classifying a
    /// workload's potential accesses.
    AnalysisComplete {
        /// Accesses proved safe on all paths (elidable).
        safe: u64,
        /// Provable violations found (over-privilege, staleness,
        /// aliasing).
        flagged: u64,
        /// Accesses that need the runtime checker.
        dynamic: u64,
    },
    /// The incremental flow analyzer finished one segmented pass over an
    /// op stream.
    FlowAnalysisComplete {
        /// Barrier-delimited analysis segments in the stream.
        segments: u64,
        /// Per-`(segment, pair)` work units whose cached results were
        /// reused (0 on a from-scratch pass).
        reused: u64,
        /// Total per-`(segment, pair)` work units in the pass.
        units: u64,
    },
    /// The driver installed a static verdict map into the active
    /// protection mechanism, enabling check elision.
    StaticVerdictsInstalled {
        /// `(task, object)` pairs the map marks statically safe.
        safe_pairs: u64,
    },
    /// The driver re-installed the retained segment verdict map after a
    /// checker rebuild (mode switch or re-promotion), restoring elision
    /// that the rebuild dropped.
    SegmentVerdictsReinstalled {
        /// `(task, object)` pairs the re-installed map marks safe.
        safe_pairs: u64,
    },
    /// A task retired with per-beat checks elided by static verdicts.
    ChecksElided {
        /// Retiring task ID.
        task: u32,
        /// Checks skipped so far on the active mechanism.
        count: u64,
    },
    /// The adaptive controller issued one policy decision at an epoch
    /// boundary.
    AdaptDecision {
        /// Epoch the decision was taken in.
        epoch: u32,
        /// The rule that fired.
        rule: AdaptRule,
    },
    /// A degraded checker or quarantined FU entered its probation window.
    ProbationStarted {
        /// Epoch probation began in.
        epoch: u32,
        /// Clean epochs required before release/re-promotion.
        window: u32,
    },
    /// A probation window elapsed cleanly.
    ProbationPassed {
        /// Epoch the window closed in.
        epoch: u32,
    },
    /// A probation subject faulted again before its window elapsed.
    ProbationFailed {
        /// Epoch of the recurrence.
        epoch: u32,
        /// Times this subject has now failed.
        failures: u32,
    },
    /// The driver released a quarantined FU back into the pool on
    /// probation (the adaptive controller's reversal of
    /// [`EventKind::EngineQuarantined`]).
    EngineReleased {
        /// Released FU index.
        fu: u32,
    },
    /// The driver re-promoted a degraded checker back to the cached
    /// design after a clean probation window (the reversal of
    /// [`EventKind::CheckerDegraded`]).
    CheckerRepromoted {
        /// Capabilities re-granted into the fresh cached checker.
        regranted: u64,
    },
    /// The driver switched the active checker's provenance mode at a
    /// task boundary, re-granting live capabilities.
    CheckerModeSwitched {
        /// `true` when the new mode is Coarse.
        coarse: bool,
        /// Capabilities re-granted into the rebuilt checker.
        regranted: u64,
    },
    /// The bounded model checker finished exploring one BFS depth level.
    ModelCheckDepth {
        /// Depth level just completed (1 = the initial state's successors).
        depth: u32,
        /// Unique canonical states discovered so far.
        states: u64,
        /// States waiting in the next frontier.
        frontier: u64,
    },
    /// A bounded model-checking run finished.
    ModelCheckComplete {
        /// Unique canonical states explored.
        states: u64,
        /// Property violations found (0 on a clean run).
        violations: u64,
    },
}

impl EventKind {
    /// Stable event name used as the Chrome trace event `name`.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::BusGrant { .. } => "bus_grant",
            EventKind::L1Access { hit: true } => "l1_hit",
            EventKind::L1Access { hit: false } => "l1_miss",
            EventKind::TaskStart { .. } => "task_start",
            EventKind::TaskEnd { .. } => "task_end",
            EventKind::CheckerCheck { .. } => "checker_check",
            EventKind::CheckerStall { .. } => "checker_stall",
            EventKind::CheckerEvict { .. } => "checker_evict",
            EventKind::CheckerException { .. } => "checker_exception",
            EventKind::MmioCapInstall { .. } => "mmio_cap_install",
            EventKind::DriverPhase { .. } => "driver_phase",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::WatchdogAbort { .. } => "watchdog_abort",
            EventKind::TaskRetry { .. } => "task_retry",
            EventKind::EngineQuarantined { .. } => "engine_quarantined",
            EventKind::CheckerDegraded { .. } => "checker_degraded",
            EventKind::TagAudit { .. } => "tag_audit",
            EventKind::WorkerPanic { .. } => "worker_panic",
            EventKind::ConformanceDivergence { .. } => "conformance_divergence",
            EventKind::ConformanceComplete { .. } => "conformance_complete",
            EventKind::AnalysisComplete { .. } => "analysis_complete",
            EventKind::FlowAnalysisComplete { .. } => "flow_analysis_complete",
            EventKind::StaticVerdictsInstalled { .. } => "static_verdicts_installed",
            EventKind::SegmentVerdictsReinstalled { .. } => "segment_verdicts_reinstalled",
            EventKind::ChecksElided { .. } => "checks_elided",
            EventKind::AdaptDecision { .. } => "adapt_decision",
            EventKind::ProbationStarted { .. } => "probation_started",
            EventKind::ProbationPassed { .. } => "probation_passed",
            EventKind::ProbationFailed { .. } => "probation_failed",
            EventKind::EngineReleased { .. } => "engine_released",
            EventKind::CheckerRepromoted { .. } => "checker_repromoted",
            EventKind::CheckerModeSwitched { .. } => "checker_mode_switched",
            EventKind::ModelCheckDepth { .. } => "modelcheck_depth",
            EventKind::ModelCheckComplete { .. } => "modelcheck_complete",
        }
    }

    /// The track (Chrome trace "thread") the event renders on.
    #[must_use]
    pub fn track(&self) -> &'static str {
        match self {
            EventKind::BusGrant { .. } => "bus",
            EventKind::L1Access { .. } => "l1",
            EventKind::TaskStart { .. } | EventKind::TaskEnd { .. } => "tasks",
            EventKind::CheckerCheck { .. }
            | EventKind::CheckerStall { .. }
            | EventKind::CheckerEvict { .. }
            | EventKind::CheckerException { .. } => "checker",
            EventKind::MmioCapInstall { .. } | EventKind::DriverPhase { .. } => "driver",
            EventKind::FaultInjected { .. } => "fault",
            EventKind::WatchdogAbort { .. }
            | EventKind::TaskRetry { .. }
            | EventKind::EngineQuarantined { .. }
            | EventKind::CheckerDegraded { .. }
            | EventKind::TagAudit { .. } => "recovery",
            EventKind::WorkerPanic { .. } => "harness",
            EventKind::ConformanceDivergence { .. } | EventKind::ConformanceComplete { .. } => {
                "conformance"
            }
            EventKind::AnalysisComplete { .. }
            | EventKind::FlowAnalysisComplete { .. }
            | EventKind::StaticVerdictsInstalled { .. }
            | EventKind::SegmentVerdictsReinstalled { .. }
            | EventKind::ChecksElided { .. } => "analysis",
            EventKind::AdaptDecision { .. }
            | EventKind::ProbationStarted { .. }
            | EventKind::ProbationPassed { .. }
            | EventKind::ProbationFailed { .. } => "adapt",
            EventKind::EngineReleased { .. }
            | EventKind::CheckerRepromoted { .. }
            | EventKind::CheckerModeSwitched { .. } => "recovery",
            EventKind::ModelCheckDepth { .. } | EventKind::ModelCheckComplete { .. } => "verify",
        }
    }
}

/// One recorded event: a virtual-cycle timestamp plus what happened.
///
/// Cycle stamps are per-source virtual time: the timing models stamp with
/// simulated cycles, the driver stamps with its accumulated setup-cycle
/// clock, and the functional checker path stamps with its request index.
/// Exports keep the sources on separate tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Virtual-cycle timestamp.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_tracks_are_stable() {
        let e = EventKind::BusGrant {
            lane: 0,
            task: 0,
            beats: 1,
            waited: 0,
        };
        assert_eq!(e.name(), "bus_grant");
        assert_eq!(e.track(), "bus");
        assert_eq!(EventKind::L1Access { hit: true }.name(), "l1_hit");
        assert_eq!(EventKind::L1Access { hit: false }.name(), "l1_miss");
        assert_eq!(
            EventKind::DriverPhase {
                task: 1,
                phase: Phase::Allocate
            }
            .track(),
            "driver"
        );
        let inject = EventKind::FaultInjected {
            task: 3,
            fault: FaultKind::RogueDma,
        };
        assert_eq!(inject.name(), "fault_injected");
        assert_eq!(inject.track(), "fault");
        let abort = EventKind::WatchdogAbort { task: 3, ops: 4096 };
        assert_eq!(abort.name(), "watchdog_abort");
        assert_eq!(abort.track(), "recovery");
        assert_eq!(
            EventKind::EngineQuarantined { fu: 1, faults: 2 }.track(),
            "recovery"
        );
        let div = EventKind::ConformanceDivergence { op: 9 };
        assert_eq!(div.name(), "conformance_divergence");
        assert_eq!(div.track(), "conformance");
        let done = EventKind::ConformanceComplete {
            ops: 100,
            divergences: 0,
        };
        assert_eq!(done.name(), "conformance_complete");
        assert_eq!(done.track(), "conformance");
        let analyzed = EventKind::AnalysisComplete {
            safe: 10,
            flagged: 0,
            dynamic: 2,
        };
        assert_eq!(analyzed.name(), "analysis_complete");
        assert_eq!(analyzed.track(), "analysis");
        let installed = EventKind::StaticVerdictsInstalled { safe_pairs: 3 };
        assert_eq!(installed.name(), "static_verdicts_installed");
        assert_eq!(installed.track(), "analysis");
        let elided = EventKind::ChecksElided { task: 1, count: 64 };
        assert_eq!(elided.name(), "checks_elided");
        assert_eq!(elided.track(), "analysis");
        let decision = EventKind::AdaptDecision {
            epoch: 4,
            rule: AdaptRule::StallUp,
        };
        assert_eq!(decision.name(), "adapt_decision");
        assert_eq!(decision.track(), "adapt");
        assert_eq!(
            EventKind::ProbationStarted {
                epoch: 1,
                window: 2
            }
            .track(),
            "adapt"
        );
        assert_eq!(
            EventKind::ProbationPassed { epoch: 3 }.name(),
            "probation_passed"
        );
        assert_eq!(
            EventKind::ProbationFailed {
                epoch: 3,
                failures: 2
            }
            .name(),
            "probation_failed"
        );
        assert_eq!(EventKind::EngineReleased { fu: 1 }.track(), "recovery");
        assert_eq!(
            EventKind::CheckerRepromoted { regranted: 2 }.name(),
            "checker_repromoted"
        );
        let switched = EventKind::CheckerModeSwitched {
            coarse: true,
            regranted: 4,
        };
        assert_eq!(switched.name(), "checker_mode_switched");
        assert_eq!(switched.track(), "recovery");
        let level = EventKind::ModelCheckDepth {
            depth: 3,
            states: 120,
            frontier: 40,
        };
        assert_eq!(level.name(), "modelcheck_depth");
        assert_eq!(level.track(), "verify");
        let verified = EventKind::ModelCheckComplete {
            states: 500,
            violations: 0,
        };
        assert_eq!(verified.name(), "modelcheck_complete");
        assert_eq!(verified.track(), "verify");
    }

    #[test]
    fn adapt_rule_labels_are_stable_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for rule in AdaptRule::ALL {
            assert!(seen.insert(rule.label()), "duplicate label {rule}");
        }
        assert_eq!(AdaptRule::StallUp.to_string(), "stall-up");
        assert_eq!(AdaptRule::FuRequarantine.label(), "fu-requarantine");
    }

    #[test]
    fn fault_labels_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(FaultKind::from_label("no-such-fault"), None);
        assert_eq!(FaultKind::EngineHang.to_string(), "engine-hang");
    }

    #[test]
    fn phase_labels_match_figure6() {
        assert_eq!(Phase::Allocate.label(), "allocate");
        assert_eq!(Phase::Execute.to_string(), "execute");
        assert_eq!(Phase::Deallocate.label(), "deallocate");
    }
}
