//! A hand-rolled JSON writer and a minimal validator.
//!
//! The workspace builds offline, so there is no serde; the writer covers
//! exactly what the exporters need (objects, arrays, strings, integers,
//! finite floats, booleans) and the validator exists so tests can assert
//! well-formedness of every exported byte without external tooling.

/// Escapes `s` for use inside a JSON string literal (without the quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes an `f64` deterministically: shortest round-trip decimal,
/// with non-finite values clamped to `0` (JSON has no NaN/Infinity).
#[must_use]
pub fn number(value: f64) -> String {
    if value.is_finite() {
        let s = format!("{value}");
        // `{}` prints integral floats without a point; keep them numbers
        // either way — JSON does not distinguish.
        s
    } else {
        "0".to_owned()
    }
}

/// An incremental JSON writer with automatic comma placement.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` once a member was emitted.
    stack: Vec<bool>,
    /// A key was just written; the next value must not emit a comma.
    pending_key: bool,
}

impl JsonWriter {
    /// A fresh writer.
    #[must_use]
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    fn before_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(used) = self.stack.last_mut() {
            if *used {
                self.out.push(',');
            }
            *used = true;
        }
    }

    /// Opens an object.
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        self.stack.pop();
        self.out.push('}');
    }

    /// Opens an array.
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        self.stack.pop();
        self.out.push(']');
    }

    /// Writes an object key; the next call writes its value.
    pub fn key(&mut self, name: &str) {
        if let Some(used) = self.stack.last_mut() {
            if *used {
                self.out.push(',');
            }
            *used = true;
        }
        self.out.push('"');
        self.out.push_str(&escape(name));
        self.out.push_str("\":");
        self.pending_key = true;
    }

    /// Writes a string value.
    pub fn string(&mut self, value: &str) {
        self.before_value();
        self.out.push('"');
        self.out.push_str(&escape(value));
        self.out.push('"');
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, value: u64) {
        self.before_value();
        self.out.push_str(&value.to_string());
    }

    /// Writes a float value (deterministic shortest form).
    pub fn f64(&mut self, value: f64) {
        self.before_value();
        self.out.push_str(&number(value));
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, value: bool) {
        self.before_value();
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// Finishes and returns the JSON text.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

/// Validates that `text` is one well-formed JSON value.
///
/// # Errors
///
/// A message naming the byte offset of the first problem.
pub fn validate(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
        Some(b'{') => {
            *pos += 1;
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(bytes, pos);
                parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                skip_ws(bytes, pos);
                parse_value(bytes, pos)?;
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(bytes, pos);
                parse_value(bytes, pos)?;
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(_) => parse_number(bytes, pos),
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", want as char, *pos))
    }
}

fn literal(bytes: &[u8], pos: &mut usize, word: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(word) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(bytes, pos, b'"')?;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if bytes.len() < *pos + 5
                            || !bytes[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {}", *pos));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            0x00..=0x1f => return Err(format!("raw control char at byte {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |bytes: &[u8], pos: &mut usize| {
        let from = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > from
    };
    if !digits(bytes, pos) {
        return Err(format!("expected a number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(bytes, pos) {
            return Err(format!("bad fraction at byte {}", *pos));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(bytes, pos) {
            return Err(format!("bad exponent at byte {}", *pos));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_builds_nested_structures() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name");
        w.string("a \"quoted\" name\n");
        w.key("list");
        w.begin_array();
        w.u64(1);
        w.u64(2);
        w.begin_object();
        w.key("ok");
        w.bool(true);
        w.end_object();
        w.end_array();
        w.key("pi");
        w.f64(3.25);
        w.end_object();
        let s = w.finish();
        validate(&s).unwrap();
        assert!(s.contains("\\\"quoted\\\""));
        assert!(s.contains("3.25"));
    }

    #[test]
    fn non_finite_floats_become_zero() {
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(f64::INFINITY), "0");
        assert_eq!(number(1.5), "1.5");
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate("{\"a\":[1,2.5,-3e2,true,null,\"x\"]}").unwrap();
        validate("  [ ]  ").unwrap();
        assert!(validate("{\"a\":}").is_err());
        assert!(validate("[1,]").is_err());
        assert!(validate("{\"a\":1} extra").is_err());
        assert!(validate("\"unterminated").is_err());
    }
}
