//! # obs — observability for the simulator
//!
//! A zero-dependency, deterministic observability layer shared by every
//! crate in the workspace:
//!
//! * **Event tracing** ([`Tracer`], [`Event`], [`EventKind`]): structured,
//!   cycle-stamped events — bus grants and contention, L1 hits/misses,
//!   checker checks/stalls/evictions/exceptions, MMIO capability installs,
//!   and the driver's Figure 6 state transitions. The default
//!   [`NullTracer`] makes the instrumented and uninstrumented paths one
//!   and the same code, so enabling tracing can never change a cycle
//!   count.
//! * **Metrics** ([`Registry`], [`Snapshot`], [`MetricSource`]): named
//!   counters, gauges, and power-of-two histograms over `BTreeMap`s, so
//!   iteration (and therefore every exported byte) is deterministic.
//! * **Profiling** ([`prof`]): a hierarchical span profiler attributing
//!   costs to nested named spans in two domains — deterministic
//!   simulated cycles (what `capcheri.profile.v1` reports serialize)
//!   and diagnostic wall-clock time (never serialized). [`NullProfiler`]
//!   keeps the uninstrumented path zero-cost, exactly like
//!   [`NullTracer`].
//! * **Exporters** ([`chrome`], [`json`], [`report`]): Chrome
//!   trace-event JSON loadable in Perfetto (`ui.perfetto.dev`), with
//!   virtual cycles as timestamps, and a flat JSON metrics report — both
//!   hand-rolled, no serde.
//!
//! # Examples
//!
//! ```
//! use obs::{EventKind, Registry, TraceBuffer, Tracer};
//!
//! let mut buf = TraceBuffer::new();
//! buf.record(10, EventKind::TaskStart { task: 1 });
//! buf.record(42, EventKind::BusGrant { lane: 0, task: 1, beats: 2, waited: 3 });
//! let trace_json = obs::chrome::chrome_trace_json(buf.events());
//! assert!(trace_json.contains("traceEvents"));
//!
//! let mut reg = Registry::new();
//! reg.counter_add("checker.granted", 7);
//! reg.gauge_set("bus_utilization", 0.5);
//! let snapshot = reg.snapshot();
//! assert_eq!(snapshot.counter("checker.granted"), Some(7));
//! obs::json::validate(&snapshot.to_json()).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
mod event;
pub mod json;
mod metrics;
pub mod prof;
pub mod report;
pub mod stats;
mod tracer;

pub use event::{AdaptRule, Event, EventKind, FaultKind, Phase};
pub use metrics::{HistogramSnapshot, MetricSource, Registry, Snapshot};
pub use prof::{NullProfiler, ProfileSnapshot, Profiler, SpanProfiler, SpanSnapshot};
pub use tracer::{NullTracer, SharedTracer, TraceBuffer, Tracer};
