//! The metrics registry: named counters, gauges, and power-of-two
//! histograms, with deterministic iteration and a frozen [`Snapshot`].

use crate::json::JsonWriter;
use std::collections::BTreeMap;

/// Anything that can dump its counters into a [`Registry`].
///
/// The four legacy stats structs ([`crate::stats`]) implement this, so
/// one call per component replaces the ad-hoc per-struct plumbing.
pub trait MetricSource {
    /// Writes this source's metrics under `prefix` (e.g. `"checker."`).
    fn export_metrics(&self, registry: &mut Registry, prefix: &str);
}

/// A power-of-two histogram: sample `v` lands in bucket `bit_length(v)`,
/// so bucket 0 holds zeros, bucket 1 holds `1`, bucket 2 holds `2..=3`…
#[derive(Clone, Debug, PartialEq, Eq)]
struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; 65],
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }

    fn observe(&mut self, sample: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(sample);
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
        self.buckets[(64 - sample.leading_zeros()) as usize] += 1;
    }
}

/// Frozen summary of one histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples observed.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// The occupied power-of-two buckets as `(bucket, count)` pairs in
    /// ascending bucket order. Bucket `b` holds samples whose bit length
    /// is `b`: bucket 0 holds zeros, bucket 1 holds `1`, bucket 2 holds
    /// `2..=3`, and so on — deterministic by construction, and sparse so
    /// a mostly-empty 65-bucket array costs nothing to carry around.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// The inclusive sample range `(lo, hi)` bucket `b` covers.
    #[must_use]
    pub fn bucket_range(bucket: u8) -> (u64, u64) {
        match bucket {
            0 => (0, 0),
            b => (1 << (b - 1), u64::MAX >> (64 - u32::from(b))),
        }
    }
}

/// The live registry components write into.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn counter_add(&mut self, name: impl Into<String>, delta: u64) {
        *self.counters.entry(name.into()).or_insert(0) += delta;
    }

    /// Sets the named gauge.
    pub fn gauge_set(&mut self, name: impl Into<String>, value: f64) {
        self.gauges.insert(name.into(), value);
    }

    /// Records one sample into the named histogram.
    pub fn observe(&mut self, name: impl Into<String>, sample: u64) {
        self.histograms
            .entry(name.into())
            .or_insert_with(Histogram::new)
            .observe(sample);
    }

    /// Pulls everything a [`MetricSource`] has to say, under `prefix`.
    pub fn absorb(&mut self, source: &dyn MetricSource, prefix: &str) {
        source.export_metrics(self, prefix);
    }

    /// Freezes the current state.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| {
                    (
                        name.clone(),
                        HistogramSnapshot {
                            count: h.count,
                            sum: h.sum,
                            min: if h.count == 0 { 0 } else { h.min },
                            max: h.max,
                            mean: if h.count == 0 {
                                0.0
                            } else {
                                h.sum as f64 / h.count as f64
                            },
                            buckets: h
                                .buckets
                                .iter()
                                .enumerate()
                                .filter(|(_, n)| **n > 0)
                                .map(|(b, n)| (b as u8, *n))
                                .collect(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// A frozen, ordered view of a [`Registry`] — the one type every exporter
/// and report consumes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time gauges, by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries, by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The named counter's value, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The named gauge's value, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Flat JSON: `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    /// Key order is the `BTreeMap` order, so the output is byte-stable.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("counters");
        w.begin_object();
        for (name, value) in &self.counters {
            w.key(name);
            w.u64(*value);
        }
        w.end_object();
        w.key("gauges");
        w.begin_object();
        for (name, value) in &self.gauges {
            w.key(name);
            w.f64(*value);
        }
        w.end_object();
        w.key("histograms");
        w.begin_object();
        for (name, h) in &self.histograms {
            w.key(name);
            w.begin_object();
            w.key("count");
            w.u64(h.count);
            w.key("sum");
            w.u64(h.sum);
            w.key("min");
            w.u64(h.min);
            w.key("max");
            w.u64(h.max);
            w.key("mean");
            w.f64(h.mean);
            w.key("buckets");
            write_buckets(&mut w, &h.buckets);
            w.end_object();
        }
        w.end_object();
        w.end_object();
        w.finish()
    }
}

/// Writes a sparse bucket list as `[[bucket,count],...]` — the shared
/// shape every exporter uses for histogram buckets.
pub(crate) fn write_buckets(w: &mut JsonWriter, buckets: &[(u8, u64)]) {
    w.begin_array();
    for (bucket, count) in buckets {
        w.begin_array();
        w.u64(u64::from(*bucket));
        w.u64(*count);
        w.end_array();
    }
    w.end_array();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Registry::new();
        r.counter_add("x", 2);
        r.counter_add("x", 3);
        assert_eq!(r.snapshot().counter("x"), Some(5));
        assert_eq!(r.snapshot().counter("missing"), None);
    }

    #[test]
    fn histogram_summarizes() {
        let mut r = Registry::new();
        for v in [0u64, 1, 3, 8] {
            r.observe("lat", v);
        }
        let s = r.snapshot();
        let h = &s.histograms["lat"];
        assert_eq!((h.count, h.sum, h.min, h.max), (4, 12, 0, 8));
        assert!((h.mean - 3.0).abs() < 1e-12);
        // Bit-length buckets: 0→0, 1→1, 3→2, 8→4.
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (2, 1), (4, 1)]);
    }

    #[test]
    fn bucketing_is_deterministic_and_boundary_exact() {
        // Each power-of-two boundary lands in its own bucket; one below
        // lands one bucket lower. Observation order never matters.
        let cases: [(u64, u8); 8] = [
            (0, 0),
            (1, 1),
            (2, 2),
            (3, 2),
            (4, 3),
            (1023, 10),
            (1024, 11),
            (u64::MAX, 64),
        ];
        let mut fwd = Registry::new();
        for (v, _) in cases {
            fwd.observe("h", v);
        }
        let mut rev = Registry::new();
        for &(v, _) in cases.iter().rev() {
            rev.observe("h", v);
        }
        assert_eq!(fwd.snapshot(), rev.snapshot(), "order-independent");
        let snap = fwd.snapshot();
        let h = &snap.histograms["h"];
        for (v, bucket) in cases {
            assert!(
                h.buckets.iter().any(|&(b, _)| b == bucket),
                "sample {v} should occupy bucket {bucket}: {:?}",
                h.buckets
            );
            let (lo, hi) = HistogramSnapshot::bucket_range(bucket);
            assert!(lo <= v && v <= hi, "{v} outside bucket {bucket} range");
        }
        assert!(
            h.buckets.windows(2).all(|w| w[0].0 < w[1].0),
            "buckets ascend: {:?}",
            h.buckets
        );
    }

    #[test]
    fn snapshot_json_is_ordered_and_valid() {
        let mut r = Registry::new();
        r.counter_add("b", 1);
        r.counter_add("a", 2);
        r.gauge_set("util", 0.25);
        r.observe("h", 4);
        let json = r.snapshot().to_json();
        crate::json::validate(&json).unwrap();
        // BTreeMap order: "a" before "b".
        assert!(json.find("\"a\"").unwrap() < json.find("\"b\"").unwrap());
        assert_eq!(json, r.snapshot().to_json(), "byte-stable");
    }

    /// Pins the exact serialized shape of [`Snapshot::to_json`]: section
    /// order, per-histogram key order, and the sparse bucket encoding.
    /// Downstream consumers (CI `cmp`s, the trend differ) rely on these
    /// bytes, so a change here is a schema change and must be deliberate.
    #[test]
    fn snapshot_json_key_order_is_pinned() {
        let mut r = Registry::new();
        r.counter_add("n", 3);
        r.gauge_set("util", 0.5);
        r.observe("lat", 5);
        r.observe("lat", 0);
        let json = r.snapshot().to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"n\":3},\
             \"gauges\":{\"util\":0.5},\
             \"histograms\":{\"lat\":{\"count\":2,\"sum\":5,\"min\":0,\"max\":5,\
             \"mean\":2.5,\"buckets\":[[0,1],[3,1]]}}}"
        );
    }

    #[test]
    fn absorb_uses_the_prefix() {
        struct One;
        impl MetricSource for One {
            fn export_metrics(&self, registry: &mut Registry, prefix: &str) {
                registry.counter_add(format!("{prefix}n"), 1);
            }
        }
        let mut r = Registry::new();
        r.absorb(&One, "one.");
        assert_eq!(r.snapshot().counter("one.n"), Some(1));
    }
}
