//! The hierarchical span profiler — where a run's cycles went.
//!
//! The tracer ([`crate::Tracer`]) answers *what happened when*; the
//! profiler answers *where the time went*. Instrumented code opens
//! nested, named spans and attributes costs to the innermost open span
//! in two separate domains:
//!
//! * **Simulated cycles** ([`Profiler::add_cycles`]) — the deterministic
//!   domain. Every cycle a timing model attributes here is derived from
//!   the simulation alone, so for a fixed input the span tree is
//!   byte-identical on any machine, at any thread count. Reports
//!   (`capcheri.profile.v1`) serialize **only** this domain.
//! * **Wall-clock nanoseconds** ([`Profiler::add_wall_ns`]) — the
//!   diagnostic domain, for finding where the *simulator itself* spends
//!   host time. Wall readings are inherently nondeterministic, so they
//!   are kept out of every serialized report (the repository lint's
//!   `nd-wall-clock` rule enforces the same split inside the timing
//!   crates, which never read a host clock at all).
//!
//! Latency distributions go through [`Profiler::observe`] into the same
//! deterministic power-of-two histograms the metrics registry uses
//! ([`crate::Registry::observe`]), so a span tree can carry per-request
//! wait/beat distributions alongside its totals.
//!
//! [`NullProfiler`] mirrors [`crate::NullTracer`]: instrumented and
//! uninstrumented paths are one and the same code, every method is an
//! inline no-op, and hot loops can hoist [`Profiler::enabled`] to skip
//! even argument preparation.
//!
//! # Examples
//!
//! ```
//! use obs::prof::{Profiler, SpanProfiler};
//!
//! let mut p = SpanProfiler::new();
//! p.enter("accel");
//! p.enter("setup");
//! p.add_cycles(310);
//! p.exit();
//! p.enter("execute");
//! p.add_cycles(4_000);
//! p.observe("accel.req_wait", 3);
//! p.exit();
//! p.exit();
//! let snap = p.snapshot();
//! assert_eq!(snap.attributed_cycles(), 4_310);
//! assert_eq!(snap.spans[0].name, "run");
//! ```

use crate::metrics::{Registry, Snapshot};

/// Anything that can receive span entries and attributed costs.
///
/// Instrumented code calls these methods unconditionally; with the
/// default [`NullProfiler`] every call is a no-op the optimizer removes.
/// Hot loops that must *compute* something before attributing it can
/// hoist [`Profiler::enabled`] once and skip the work entirely.
pub trait Profiler {
    /// Opens a child span of the innermost open span (creating it on
    /// first entry; re-entering an existing child accumulates into it).
    fn enter(&mut self, name: &'static str);

    /// Closes the innermost open span. The root span never closes.
    fn exit(&mut self);

    /// Attributes simulated cycles to the innermost open span
    /// (the deterministic domain — this is what reports serialize).
    fn add_cycles(&mut self, cycles: u64);

    /// Attributes host wall-clock nanoseconds to the innermost open span
    /// (the diagnostic domain — never serialized into reports).
    fn add_wall_ns(&mut self, ns: u64);

    /// Records one sample into the named power-of-two histogram.
    fn observe(&mut self, hist: &'static str, sample: u64);

    /// Whether attributed costs go anywhere.
    fn enabled(&self) -> bool {
        true
    }
}

/// The default profiler: drops everything, costs nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullProfiler;

impl Profiler for NullProfiler {
    #[inline]
    fn enter(&mut self, _name: &'static str) {}

    #[inline]
    fn exit(&mut self) {}

    #[inline]
    fn add_cycles(&mut self, _cycles: u64) {}

    #[inline]
    fn add_wall_ns(&mut self, _ns: u64) {}

    #[inline]
    fn observe(&mut self, _hist: &'static str, _sample: u64) {}

    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

impl<T: Profiler + ?Sized> Profiler for &mut T {
    fn enter(&mut self, name: &'static str) {
        (**self).enter(name);
    }

    fn exit(&mut self) {
        (**self).exit();
    }

    fn add_cycles(&mut self, cycles: u64) {
        (**self).add_cycles(cycles);
    }

    fn add_wall_ns(&mut self, ns: u64) {
        (**self).add_wall_ns(ns);
    }

    fn observe(&mut self, hist: &'static str, sample: u64) {
        (**self).observe(hist, sample);
    }

    fn enabled(&self) -> bool {
        (**self).enabled()
    }
}

/// One node of the frozen span tree.
///
/// `cycles` and `wall_ns` are *self* costs — what was attributed while
/// this exact span was innermost, excluding its children. Summing over
/// every node therefore never double-counts (see
/// [`ProfileSnapshot::attributed_cycles`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// The span's name (stable label, part of the report schema).
    pub name: &'static str,
    /// Index of the parent node (`None` for the root).
    pub parent: Option<usize>,
    /// Child node indices, in first-entry order (deterministic).
    pub children: Vec<usize>,
    /// Times this span was entered.
    pub count: u64,
    /// Self-attributed simulated cycles (the deterministic domain).
    pub cycles: u64,
    /// Self-attributed wall nanoseconds (the diagnostic domain).
    pub wall_ns: u64,
}

/// The frozen take of one [`SpanProfiler`]: the span tree plus the
/// histogram registry snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileSnapshot {
    /// The span arena; index 0 is the root span `"run"`. A child's index
    /// is always greater than its parent's, so a single forward pass
    /// visits parents before children.
    pub spans: Vec<SpanSnapshot>,
    /// The profiler's histograms (and nothing else), frozen.
    pub metrics: Snapshot,
}

impl ProfileSnapshot {
    /// Total simulated cycles attributed anywhere in the tree. Because
    /// node costs are self costs, this is a plain sum.
    #[must_use]
    pub fn attributed_cycles(&self) -> u64 {
        self.spans.iter().map(|s| s.cycles).sum()
    }

    /// Depth-first walk in child order, calling `f(depth, node)` — the
    /// deterministic rendering order every exporter uses.
    pub fn walk(&self, mut f: impl FnMut(usize, &SpanSnapshot)) {
        fn go(
            spans: &[SpanSnapshot],
            at: usize,
            depth: usize,
            f: &mut impl FnMut(usize, &SpanSnapshot),
        ) {
            f(depth, &spans[at]);
            for &c in &spans[at].children {
                go(spans, c, depth + 1, f);
            }
        }
        if !self.spans.is_empty() {
            go(&self.spans, 0, 0, &mut f);
        }
    }
}

#[derive(Clone, Debug)]
struct SpanNode {
    name: &'static str,
    parent: Option<usize>,
    children: Vec<usize>,
    count: u64,
    cycles: u64,
    wall_ns: u64,
}

/// The recording profiler: an arena of span nodes deduplicated by
/// `(parent, name)`, a stack of open spans, and a histogram registry.
///
/// Everything about it is deterministic: children are ordered by first
/// entry, histograms live in a `BTreeMap`-backed registry, and the
/// wall-clock domain is additive-only (the profiler itself never reads
/// a clock — callers decide where wall time comes from).
#[derive(Clone, Debug)]
pub struct SpanProfiler {
    nodes: Vec<SpanNode>,
    stack: Vec<usize>,
    hists: Registry,
}

impl Default for SpanProfiler {
    fn default() -> SpanProfiler {
        SpanProfiler::new()
    }
}

impl SpanProfiler {
    /// A fresh profiler with an open root span named `"run"`.
    #[must_use]
    pub fn new() -> SpanProfiler {
        SpanProfiler {
            nodes: vec![SpanNode {
                name: "run",
                parent: None,
                children: Vec::new(),
                count: 1,
                cycles: 0,
                wall_ns: 0,
            }],
            stack: vec![0],
            hists: Registry::new(),
        }
    }

    fn top(&self) -> usize {
        *self.stack.last().expect("the root span never closes")
    }

    /// Freezes the current state.
    #[must_use]
    pub fn snapshot(&self) -> ProfileSnapshot {
        ProfileSnapshot {
            spans: self
                .nodes
                .iter()
                .map(|n| SpanSnapshot {
                    name: n.name,
                    parent: n.parent,
                    children: n.children.clone(),
                    count: n.count,
                    cycles: n.cycles,
                    wall_ns: n.wall_ns,
                })
                .collect(),
            metrics: self.hists.snapshot(),
        }
    }
}

impl Profiler for SpanProfiler {
    fn enter(&mut self, name: &'static str) {
        let parent = self.top();
        // Fan-out per span is small (a handful of phases), so a linear
        // scan beats a map here and keeps first-entry child order free.
        let found = self.nodes[parent]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c].name == name);
        let idx = match found {
            Some(idx) => {
                self.nodes[idx].count += 1;
                idx
            }
            None => {
                let idx = self.nodes.len();
                self.nodes.push(SpanNode {
                    name,
                    parent: Some(parent),
                    children: Vec::new(),
                    count: 1,
                    cycles: 0,
                    wall_ns: 0,
                });
                self.nodes[parent].children.push(idx);
                idx
            }
        };
        self.stack.push(idx);
    }

    fn exit(&mut self) {
        if self.stack.len() > 1 {
            self.stack.pop();
        }
    }

    fn add_cycles(&mut self, cycles: u64) {
        let top = self.top();
        self.nodes[top].cycles += cycles;
    }

    fn add_wall_ns(&mut self, ns: u64) {
        let top = self.top();
        self.nodes[top].wall_ns += ns;
    }

    fn observe(&mut self, hist: &'static str, sample: u64) {
        self.hists.observe(hist, sample);
    }
}

/// Runs `f` inside a span, attributing its host wall time there — the
/// diagnostic domain's scoped helper. With a disabled profiler the clock
/// is never read and `f` runs bare.
pub fn time_wall<R>(prof: &mut dyn Profiler, name: &'static str, f: impl FnOnce() -> R) -> R {
    if !prof.enabled() {
        return f();
    }
    prof.enter(name);
    let t0 = std::time::Instant::now();
    let out = f();
    prof.add_wall_ns(t0.elapsed().as_nanos() as u64);
    prof.exit();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_profiler_is_disabled_and_silent() {
        let mut p = NullProfiler;
        assert!(!p.enabled());
        p.enter("x");
        p.add_cycles(5);
        p.observe("h", 1);
        p.exit();
    }

    #[test]
    fn spans_nest_and_deduplicate() {
        let mut p = SpanProfiler::new();
        for _ in 0..3 {
            p.enter("outer");
            p.add_cycles(10);
            p.enter("inner");
            p.add_cycles(1);
            p.exit();
            p.exit();
        }
        let s = p.snapshot();
        // run + outer + inner: re-entry accumulates, never duplicates.
        assert_eq!(s.spans.len(), 3);
        let outer = &s.spans[1];
        assert_eq!((outer.name, outer.count, outer.cycles), ("outer", 3, 30));
        let inner = &s.spans[2];
        assert_eq!((inner.name, inner.count, inner.cycles), ("inner", 3, 3));
        assert_eq!(inner.parent, Some(1));
        assert_eq!(s.attributed_cycles(), 33);
    }

    #[test]
    fn self_cycles_exclude_children() {
        let mut p = SpanProfiler::new();
        p.enter("a");
        p.add_cycles(5);
        p.enter("b");
        p.add_cycles(7);
        p.exit();
        p.add_cycles(2);
        p.exit();
        let s = p.snapshot();
        assert_eq!(s.spans[1].cycles, 7, "a's self time");
        assert_eq!(s.spans[2].cycles, 7, "b's self time");
        assert_eq!(s.attributed_cycles(), 14);
    }

    #[test]
    fn root_survives_extra_exits() {
        let mut p = SpanProfiler::new();
        p.exit();
        p.exit();
        p.add_cycles(4);
        let s = p.snapshot();
        assert_eq!(s.spans[0].name, "run");
        assert_eq!(s.spans[0].cycles, 4);
    }

    #[test]
    fn sibling_order_is_first_entry_order() {
        let mut p = SpanProfiler::new();
        for name in ["c", "a", "b", "a"] {
            p.enter(name);
            p.exit();
        }
        let s = p.snapshot();
        let names: Vec<&str> = s.spans[0]
            .children
            .iter()
            .map(|&c| s.spans[c].name)
            .collect();
        assert_eq!(names, ["c", "a", "b"]);
    }

    #[test]
    fn walk_visits_depth_first_in_child_order() {
        let mut p = SpanProfiler::new();
        p.enter("a");
        p.enter("a1");
        p.exit();
        p.exit();
        p.enter("b");
        p.exit();
        let s = p.snapshot();
        let mut seen = Vec::new();
        s.walk(|depth, node| seen.push((depth, node.name)));
        assert_eq!(seen, [(0, "run"), (1, "a"), (2, "a1"), (1, "b")]);
    }

    #[test]
    fn histograms_are_bucketed_and_frozen() {
        let mut p = SpanProfiler::new();
        for v in [0u64, 1, 2, 3, 1000] {
            p.observe("lat", v);
        }
        let s = p.snapshot();
        let h = &s.metrics.histograms["lat"];
        assert_eq!(h.count, 5);
        assert_eq!(h.max, 1000);
        // Power-of-two buckets: 0→0, 1→1, 2..3→2, 1000→10.
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (2, 2), (10, 1)]);
    }

    #[test]
    fn wall_domain_is_separate_from_cycles() {
        let mut p = SpanProfiler::new();
        let out = time_wall(&mut p, "host", || 42);
        assert_eq!(out, 42);
        let s = p.snapshot();
        assert_eq!(s.spans[1].name, "host");
        assert_eq!(s.spans[1].cycles, 0, "wall time never leaks into cycles");
        assert_eq!(s.attributed_cycles(), 0);
    }

    #[test]
    fn snapshot_is_deterministic() {
        let build = || {
            let mut p = SpanProfiler::new();
            p.enter("x");
            p.add_cycles(3);
            p.observe("h", 9);
            p.exit();
            p.snapshot()
        };
        assert_eq!(build(), build());
    }
}
