//! Machine-readable run reports — the `bench_report.json` schema.

use crate::json::JsonWriter;
use crate::metrics::Snapshot;

/// Schema identifier stamped into every report.
pub const BENCH_REPORT_SCHEMA: &str = "capcheri.bench_report.v1";

/// One benchmark run: its identity plus the frozen metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Benchmark name (e.g. `gemm_ncubed`).
    pub bench: String,
    /// System-variant label (e.g. `ccpu+caccel`).
    pub variant: String,
    /// Concurrent accelerator tasks.
    pub tasks: usize,
    /// The run's seed.
    pub seed: u64,
    /// The metrics snapshot.
    pub metrics: Snapshot,
}

impl BenchReport {
    fn write(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("schema");
        w.string(BENCH_REPORT_SCHEMA);
        w.key("bench");
        w.string(&self.bench);
        w.key("variant");
        w.string(&self.variant);
        w.key("tasks");
        w.u64(self.tasks as u64);
        w.key("seed");
        w.u64(self.seed);
        w.key("metrics");
        // Snapshot::to_json is already a complete, validated value; splice
        // it by reparsing would be wasteful — rebuild inline instead.
        w.begin_object();
        w.key("counters");
        w.begin_object();
        for (name, value) in &self.metrics.counters {
            w.key(name);
            w.u64(*value);
        }
        w.end_object();
        w.key("gauges");
        w.begin_object();
        for (name, value) in &self.metrics.gauges {
            w.key(name);
            w.f64(*value);
        }
        w.end_object();
        w.key("histograms");
        w.begin_object();
        for (name, h) in &self.metrics.histograms {
            w.key(name);
            w.begin_object();
            w.key("count");
            w.u64(h.count);
            w.key("sum");
            w.u64(h.sum);
            w.key("min");
            w.u64(h.min);
            w.key("max");
            w.u64(h.max);
            w.key("mean");
            w.f64(h.mean);
            w.key("buckets");
            crate::metrics::write_buckets(w, &h.buckets);
            w.end_object();
        }
        w.end_object();
        w.end_object();
        w.end_object();
    }

    /// This report as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write(&mut w);
        w.finish()
    }
}

/// Several reports as one JSON document:
/// `{"schema":"...","runs":[...]}`.
#[must_use]
pub fn reports_to_json(reports: &[BenchReport]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema");
    w.string(BENCH_REPORT_SCHEMA);
    w.key("runs");
    w.begin_array();
    for r in reports {
        r.write(&mut w);
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample() -> BenchReport {
        let mut reg = Registry::new();
        reg.counter_add("cycles", 1234);
        reg.counter_add("setup_cycles", 310);
        reg.gauge_set("bus_utilization", 0.42);
        BenchReport {
            bench: "gemm_ncubed".to_owned(),
            variant: "ccpu+caccel".to_owned(),
            tasks: 4,
            seed: 0xC0DE,
            metrics: reg.snapshot(),
        }
    }

    #[test]
    fn report_json_is_valid_and_complete() {
        let json = sample().to_json();
        crate::json::validate(&json).unwrap();
        for needle in [
            "\"schema\":\"capcheri.bench_report.v1\"",
            "\"bench\":\"gemm_ncubed\"",
            "\"cycles\":1234",
            "\"bus_utilization\":0.42",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn multi_report_wraps_in_runs() {
        let json = reports_to_json(&[sample(), sample()]);
        crate::json::validate(&json).unwrap();
        assert_eq!(json.matches("\"bench\":\"gemm_ncubed\"").count(), 2);
        assert!(json.contains("\"runs\":["));
    }
}
