//! The unified home of the per-component counter structs.
//!
//! These used to live with their components (`capchecker::checker`,
//! `capchecker::cached`, `ioprotect::iommu`); they now live here so one
//! [`MetricSource`] call per component replaces the ad-hoc plumbing, and
//! the owning crates re-export them so existing paths keep working.

use crate::metrics::{MetricSource, Registry};

/// Running counters of the CapChecker's data path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckerStats {
    /// Requests granted.
    pub granted: u64,
    /// Requests refused.
    pub denied: u64,
    /// Capabilities installed over the lifetime of the checker.
    pub installs: u64,
    /// Install attempts that found the table full.
    pub install_stalls: u64,
    /// Entries removed by task revocation (Figure 6 ② eviction).
    pub evictions: u64,
    /// Requests skipped because a static verdict map proved them safe.
    pub elided: u64,
}

impl MetricSource for CheckerStats {
    fn export_metrics(&self, registry: &mut Registry, prefix: &str) {
        registry.counter_add(format!("{prefix}granted"), self.granted);
        registry.counter_add(format!("{prefix}denied"), self.denied);
        registry.counter_add(format!("{prefix}installs"), self.installs);
        registry.counter_add(format!("{prefix}install_stalls"), self.install_stalls);
        registry.counter_add(format!("{prefix}evictions"), self.evictions);
        registry.counter_add(format!("{prefix}elided"), self.elided);
    }
}

/// Cache hit/miss counters of the cache-backed CapChecker variant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests whose capability was cached.
    pub hits: u64,
    /// Requests that walked the in-memory table.
    pub misses: u64,
    /// Total added latency from misses, in cycles.
    pub miss_cycles: u64,
    /// Requests refused (same accounting as [`CheckerStats::denied`]).
    pub denied: u64,
    /// Cache lines whose integrity checksum failed on a hit.
    pub corruption_detected: u64,
    /// Requests that bypassed the cache because a static verdict map
    /// proved them safe.
    pub elided: u64,
}

impl CacheStats {
    /// Miss ratio over all lookups (0 when idle).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

impl MetricSource for CacheStats {
    fn export_metrics(&self, registry: &mut Registry, prefix: &str) {
        registry.counter_add(format!("{prefix}hits"), self.hits);
        registry.counter_add(format!("{prefix}misses"), self.misses);
        registry.counter_add(format!("{prefix}miss_cycles"), self.miss_cycles);
        registry.counter_add(format!("{prefix}denied"), self.denied);
        registry.counter_add(
            format!("{prefix}corruption_detected"),
            self.corruption_detected,
        );
        registry.counter_add(format!("{prefix}elided"), self.elided);
        registry.gauge_set(format!("{prefix}miss_ratio"), self.miss_ratio());
    }
}

/// Page-table statistics: how often the IOMMU's IOTLB had to walk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IotlbStats {
    /// Requests answered from the IOTLB.
    pub hits: u64,
    /// Requests that required a page-table walk.
    pub misses: u64,
}

impl MetricSource for IotlbStats {
    fn export_metrics(&self, registry: &mut Registry, prefix: &str) {
        registry.counter_add(format!("{prefix}hits"), self.hits);
        registry.counter_add(format!("{prefix}misses"), self.misses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checker_stats_export_all_counters() {
        let s = CheckerStats {
            granted: 5,
            denied: 1,
            installs: 3,
            install_stalls: 2,
            evictions: 4,
            elided: 6,
        };
        let mut r = Registry::new();
        r.absorb(&s, "checker.");
        let snap = r.snapshot();
        assert_eq!(snap.counter("checker.granted"), Some(5));
        assert_eq!(snap.counter("checker.install_stalls"), Some(2));
        assert_eq!(snap.counter("checker.evictions"), Some(4));
        assert_eq!(snap.counter("checker.elided"), Some(6));
    }

    #[test]
    fn cache_stats_miss_ratio() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            miss_cycles: 35,
            ..CacheStats::default()
        };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
        let mut r = Registry::new();
        r.absorb(&s, "cache.");
        assert_eq!(r.snapshot().gauge("cache.miss_ratio"), Some(0.25));
    }

    #[test]
    fn iotlb_stats_export() {
        let mut r = Registry::new();
        r.absorb(&IotlbStats { hits: 9, misses: 2 }, "iotlb.");
        assert_eq!(r.snapshot().counter("iotlb.misses"), Some(2));
    }
}
