//! Tracer plumbing: the recording trait, the no-op default, the in-memory
//! buffer, and a shared handle for multi-owner wiring.

use crate::event::{Event, EventKind};
use std::cell::RefCell;
use std::rc::Rc;

/// Anything that can receive cycle-stamped events.
///
/// Instrumented code paths call [`Tracer::record`] unconditionally; with
/// the default [`NullTracer`] the call is a no-op the optimizer removes.
/// Code that must *build* something expensive before recording can gate
/// on [`Tracer::enabled`].
pub trait Tracer {
    /// Records one event at the given virtual cycle.
    fn record(&mut self, cycle: u64, kind: EventKind);

    /// Whether recorded events go anywhere.
    fn enabled(&self) -> bool {
        true
    }
}

/// The default tracer: drops everything, costs nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline]
    fn record(&mut self, _cycle: u64, _kind: EventKind) {}

    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

impl<T: Tracer + ?Sized> Tracer for &mut T {
    fn record(&mut self, cycle: u64, kind: EventKind) {
        (**self).record(cycle, kind);
    }

    fn enabled(&self) -> bool {
        (**self).enabled()
    }
}

/// An in-memory event buffer, in recording order.
///
/// By default the buffer grows without bound. [`TraceBuffer::with_capacity`]
/// turns it into a bounded ring: once `capacity` events are retained, the
/// oldest half is discarded in one batch (amortized O(1) per event, no
/// per-record shifting) and counted in [`TraceBuffer::dropped`] — long
/// fault campaigns keep their most recent window instead of blowing up
/// the heap. [`TraceBuffer::recorded`] keeps the lifetime total either
/// way, so event *counts* in reports are unaffected by the cap.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceBuffer {
    events: Vec<Event>,
    capacity: Option<usize>,
    recorded: u64,
    dropped: u64,
}

impl TraceBuffer {
    /// An empty, unbounded buffer.
    #[must_use]
    pub fn new() -> TraceBuffer {
        TraceBuffer::default()
    }

    /// An empty buffer that retains at most `capacity` events (at least
    /// 2 — a smaller ring could retain nothing after compaction).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            capacity: Some(capacity.max(2)),
            ..TraceBuffer::default()
        }
    }

    /// The retained events, in recording order (the oldest may have been
    /// dropped on a bounded buffer — see [`TraceBuffer::dropped`]).
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Lifetime count of events recorded, including dropped ones.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events discarded to honor the ring capacity (0 when unbounded).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// `true` when nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The retained events sorted by cycle; the sort is stable, so
    /// same-cycle events keep their recording order (export determinism).
    #[must_use]
    pub fn sorted_by_cycle(&self) -> Vec<Event> {
        let mut out = self.events.clone();
        out.sort_by_key(|e| e.cycle);
        out
    }
}

impl Tracer for TraceBuffer {
    fn record(&mut self, cycle: u64, kind: EventKind) {
        if let Some(cap) = self.capacity {
            if self.events.len() >= cap {
                // Batch compaction: dropping half at once keeps the
                // amortized cost O(1) per event where a true one-in-
                // one-out ring behind a `&[Event]` accessor could not.
                let cut = cap / 2;
                self.events.drain(..cut);
                self.dropped += cut as u64;
            }
        }
        self.recorded += 1;
        self.events.push(Event { cycle, kind });
    }
}

/// A cloneable handle to one [`TraceBuffer`], for wiring a single trace
/// through components that cannot share a `&mut` (the system, its
/// engines, and the timing models).
#[derive(Clone, Debug, Default)]
pub struct SharedTracer(Rc<RefCell<TraceBuffer>>);

impl SharedTracer {
    /// A handle to a fresh, empty buffer.
    #[must_use]
    pub fn new() -> SharedTracer {
        SharedTracer::default()
    }

    /// A handle to a fresh buffer bounded to `capacity` retained events
    /// (see [`TraceBuffer::with_capacity`]).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> SharedTracer {
        SharedTracer(Rc::new(RefCell::new(TraceBuffer::with_capacity(capacity))))
    }

    /// Copies the buffer out (the handle keeps recording).
    #[must_use]
    pub fn snapshot(&self) -> TraceBuffer {
        self.0.borrow().clone()
    }

    /// Takes the buffer, leaving the handle empty.
    #[must_use]
    pub fn take(&self) -> TraceBuffer {
        std::mem::take(&mut self.0.borrow_mut())
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// Lifetime count of events recorded, including dropped ones.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.0.borrow().recorded()
    }

    /// Events discarded to honor the ring capacity (0 when unbounded).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.0.borrow().dropped()
    }

    /// `true` when nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }
}

impl Tracer for SharedTracer {
    fn record(&mut self, cycle: u64, kind: EventKind) {
        self.0.borrow_mut().record(cycle, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tracer_is_disabled_and_silent() {
        let mut t = NullTracer;
        assert!(!t.enabled());
        t.record(1, EventKind::TaskStart { task: 0 });
    }

    #[test]
    fn buffer_records_in_order() {
        let mut b = TraceBuffer::new();
        b.record(5, EventKind::TaskStart { task: 0 });
        b.record(2, EventKind::TaskEnd { task: 0 });
        assert_eq!(b.len(), 2);
        assert_eq!(b.events()[0].cycle, 5);
        let sorted = b.sorted_by_cycle();
        assert_eq!(sorted[0].cycle, 2);
    }

    #[test]
    fn shared_tracer_clones_see_one_buffer() {
        let mut a = SharedTracer::new();
        let b = a.clone();
        a.record(1, EventKind::TaskStart { task: 7 });
        assert_eq!(b.len(), 1);
        let taken = b.take();
        assert_eq!(taken.len(), 1);
        assert!(a.is_empty());
    }

    #[test]
    fn bounded_buffer_drops_oldest_and_counts() {
        let mut b = TraceBuffer::with_capacity(4);
        for cycle in 0..10 {
            b.record(cycle, EventKind::TaskStart { task: 0 });
        }
        assert_eq!(b.recorded(), 10);
        assert!(b.len() <= 4, "retained {} > capacity", b.len());
        assert_eq!(b.dropped() + b.len() as u64, b.recorded());
        // The retained tail is the most recent window, still in order.
        let cycles: Vec<u64> = b.events().iter().map(|e| e.cycle).collect();
        assert!(cycles.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*cycles.last().unwrap(), 9);
    }

    #[test]
    fn unbounded_buffer_never_drops() {
        let mut b = TraceBuffer::new();
        for cycle in 0..1000 {
            b.record(cycle, EventKind::TaskEnd { task: 1 });
        }
        assert_eq!(b.len(), 1000);
        assert_eq!(b.recorded(), 1000);
        assert_eq!(b.dropped(), 0);
    }

    #[test]
    fn tiny_capacity_is_clamped_to_two() {
        let mut b = TraceBuffer::with_capacity(0);
        for cycle in 0..5 {
            b.record(cycle, EventKind::TaskStart { task: 2 });
        }
        assert!(!b.is_empty(), "a degenerate ring must still retain events");
        assert_eq!(b.recorded(), 5);
    }

    #[test]
    fn shared_tracer_capacity_forwards() {
        let mut t = SharedTracer::with_capacity(4);
        for cycle in 0..9 {
            t.record(cycle, EventKind::L1Access { hit: false });
        }
        assert_eq!(t.recorded(), 9);
        assert!(t.len() <= 4);
        assert_eq!(t.dropped() + t.len() as u64, t.recorded());
        // snapshot() carries the drop accounting with it.
        let snap = t.snapshot();
        assert_eq!(snap.recorded(), 9);
        assert_eq!(snap.dropped(), t.dropped());
    }

    #[test]
    fn mut_ref_forwards() {
        let mut b = TraceBuffer::new();
        let r: &mut dyn Tracer = &mut b;
        assert!(r.enabled());
        r.record(0, EventKind::L1Access { hit: true });
        assert_eq!(b.len(), 1);
    }
}
