//! Tracer plumbing: the recording trait, the no-op default, the in-memory
//! buffer, and a shared handle for multi-owner wiring.

use crate::event::{Event, EventKind};
use std::cell::RefCell;
use std::rc::Rc;

/// Anything that can receive cycle-stamped events.
///
/// Instrumented code paths call [`Tracer::record`] unconditionally; with
/// the default [`NullTracer`] the call is a no-op the optimizer removes.
/// Code that must *build* something expensive before recording can gate
/// on [`Tracer::enabled`].
pub trait Tracer {
    /// Records one event at the given virtual cycle.
    fn record(&mut self, cycle: u64, kind: EventKind);

    /// Whether recorded events go anywhere.
    fn enabled(&self) -> bool {
        true
    }
}

/// The default tracer: drops everything, costs nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline]
    fn record(&mut self, _cycle: u64, _kind: EventKind) {}

    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

impl<T: Tracer + ?Sized> Tracer for &mut T {
    fn record(&mut self, cycle: u64, kind: EventKind) {
        (**self).record(cycle, kind);
    }

    fn enabled(&self) -> bool {
        (**self).enabled()
    }
}

/// An in-memory event buffer, in recording order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceBuffer {
    events: Vec<Event>,
}

impl TraceBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> TraceBuffer {
        TraceBuffer::default()
    }

    /// The recorded events, in recording order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events sorted by cycle; the sort is stable, so same-cycle
    /// events keep their recording order (export determinism).
    #[must_use]
    pub fn sorted_by_cycle(&self) -> Vec<Event> {
        let mut out = self.events.clone();
        out.sort_by_key(|e| e.cycle);
        out
    }
}

impl Tracer for TraceBuffer {
    fn record(&mut self, cycle: u64, kind: EventKind) {
        self.events.push(Event { cycle, kind });
    }
}

/// A cloneable handle to one [`TraceBuffer`], for wiring a single trace
/// through components that cannot share a `&mut` (the system, its
/// engines, and the timing models).
#[derive(Clone, Debug, Default)]
pub struct SharedTracer(Rc<RefCell<TraceBuffer>>);

impl SharedTracer {
    /// A handle to a fresh, empty buffer.
    #[must_use]
    pub fn new() -> SharedTracer {
        SharedTracer::default()
    }

    /// Copies the buffer out (the handle keeps recording).
    #[must_use]
    pub fn snapshot(&self) -> TraceBuffer {
        self.0.borrow().clone()
    }

    /// Takes the buffer, leaving the handle empty.
    #[must_use]
    pub fn take(&self) -> TraceBuffer {
        std::mem::take(&mut self.0.borrow_mut())
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }
}

impl Tracer for SharedTracer {
    fn record(&mut self, cycle: u64, kind: EventKind) {
        self.0.borrow_mut().record(cycle, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tracer_is_disabled_and_silent() {
        let mut t = NullTracer;
        assert!(!t.enabled());
        t.record(1, EventKind::TaskStart { task: 0 });
    }

    #[test]
    fn buffer_records_in_order() {
        let mut b = TraceBuffer::new();
        b.record(5, EventKind::TaskStart { task: 0 });
        b.record(2, EventKind::TaskEnd { task: 0 });
        assert_eq!(b.len(), 2);
        assert_eq!(b.events()[0].cycle, 5);
        let sorted = b.sorted_by_cycle();
        assert_eq!(sorted[0].cycle, 2);
    }

    #[test]
    fn shared_tracer_clones_see_one_buffer() {
        let mut a = SharedTracer::new();
        let b = a.clone();
        a.record(1, EventKind::TaskStart { task: 7 });
        assert_eq!(b.len(), 1);
        let taken = b.take();
        assert_eq!(taken.len(), 1);
        assert!(a.is_empty());
    }

    #[test]
    fn mut_ref_forwards() {
        let mut b = TraceBuffer::new();
        let r: &mut dyn Tracer = &mut b;
        assert!(r.enabled());
        r.record(0, EventKind::L1Access { hit: true });
        assert_eq!(b.len(), 1);
    }
}
