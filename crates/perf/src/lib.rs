//! # perf — the deterministic parallel run harness
//!
//! The paper's evaluation is an embarrassingly parallel grid: benchmark ×
//! variant × task-count cells for Figures 7–12 and the tables, plus seeded
//! fault campaigns. Every cell builds its own system, tracer, and metrics
//! registry, so cells share nothing and can run on any thread. This crate
//! provides the one primitive everything fans out through:
//! [`parallel_map`] — a hand-rolled scoped-thread worker pool
//! (`std::thread::scope`; the build environment has no crates.io access,
//! so no rayon).
//!
//! ## Determinism contract
//!
//! Workers pull cell *indices* from a shared atomic counter, compute
//! `f(index)` with worker-local state only, and tag each result with its
//! index. The coordinator reassembles results **in index order**, so the
//! output `Vec` is identical for any thread count — including 1 — and any
//! interleaving. Figures, reports, and campaign JSON built from the merged
//! results are therefore byte-identical to the sequential path.
//!
//! ## Panic policy
//!
//! A panicking worker must not take the harness down with a cascade of
//! poisoned locks or a torn merge. The pool joins every worker, keeps the
//! first panic (lowest worker index, for determinism), records it as an
//! [`EventKind::WorkerPanic`] obs event on the *coordinating* thread, and
//! returns it as a single clean [`WorkerPanic`] error that still carries
//! the original payload for [`WorkerPanic::resume`].
//!
//! ```
//! let squares = perf::parallel_map(4, 10, |i| i * i).unwrap();
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use obs::{EventKind, NullTracer, Tracer};
use std::any::Any;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Environment variable overriding the worker count ([`auto_threads`]).
pub const THREADS_ENV: &str = "CAPCHERI_THREADS";

/// The worker count to use when the user didn't pick one: the
/// `CAPCHERI_THREADS` environment variable if set to a positive integer,
/// else the machine's available parallelism, else 1.
#[must_use]
pub fn auto_threads() -> usize {
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    host_threads()
}

/// Host threads actually available to this process (at least 1).
#[must_use]
pub fn host_threads() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// A worker thread panicked while computing a cell.
///
/// The pool converts the panic into this single error instead of letting
/// `thread::scope` re-raise it mid-merge: the coordinator stays intact,
/// no lock is poisoned, and the caller decides whether to surface the
/// error or [`resume`](WorkerPanic::resume) the unwind.
pub struct WorkerPanic {
    /// Index of the panicking worker thread (0-based).
    pub worker: u32,
    /// The panic message, when the payload was a string; otherwise a
    /// placeholder.
    pub message: String,
    payload: Box<dyn Any + Send + 'static>,
}

impl WorkerPanic {
    fn from_payload(worker: u32, payload: Box<dyn Any + Send + 'static>) -> WorkerPanic {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        WorkerPanic {
            worker,
            message,
            payload,
        }
    }

    /// Re-raises the original panic on the current thread.
    pub fn resume(self) -> ! {
        std::panic::resume_unwind(self.payload)
    }
}

impl fmt::Debug for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPanic")
            .field("worker", &self.worker)
            .field("message", &self.message)
            .finish_non_exhaustive()
    }
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker {} panicked: {}", self.worker, self.message)
    }
}

impl Error for WorkerPanic {}

/// Maps `f` over `0..cells` on a pool of `threads` scoped workers and
/// returns the results in index order.
///
/// Equivalent to `(0..cells).map(f).collect()` for any `threads ≥ 1` —
/// the merge order is the index order, never the completion order. `f`
/// must be `Sync` because every worker calls it; all per-cell mutable
/// state belongs inside `f`.
///
/// # Errors
///
/// If a worker panics, the first panic (by worker index) is returned as a
/// [`WorkerPanic`]; the remaining workers are still joined first.
pub fn parallel_map<T, F>(threads: usize, cells: usize, f: F) -> Result<Vec<T>, WorkerPanic>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_traced(threads, cells, &mut NullTracer, f)
}

/// [`parallel_map`], recording any worker panic as an
/// [`EventKind::WorkerPanic`] obs event before returning the error.
///
/// The event is recorded on the coordinating thread after all workers are
/// joined — [`obs::SharedTracer`] is `Rc`-based and must never cross into
/// a worker.
///
/// # Errors
///
/// Same as [`parallel_map`].
pub fn parallel_map_traced<T, F>(
    threads: usize,
    cells: usize,
    tracer: &mut dyn Tracer,
    f: F,
) -> Result<Vec<T>, WorkerPanic>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    /// One worker's take: its `(index, result)` pairs, or its panic payload.
    type WorkerOutcome<T> = Result<Vec<(usize, T)>, Box<dyn Any + Send>>;

    // Oversubscribing the host cannot help here: cells share nothing, so
    // workers beyond the available cores only add context switching and
    // keep more per-cell working sets resident at once. The merge is
    // index-ordered, so the output is byte-identical for any worker
    // count and the clamp is invisible except in wall time.
    // (`parallel_map_profiled` deliberately skips this clamp so the
    // breakdown can demonstrate oversubscription.)
    let workers = threads.max(1).min(cells.max(1)).min(host_threads());
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;

    let joined: Vec<WorkerOutcome<T>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cells {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(thread::ScopedJoinHandle::join)
            .collect()
    });

    let mut slots: Vec<Option<T>> = (0..cells).map(|_| None).collect();
    let mut first_panic: Option<WorkerPanic> = None;
    for (worker, outcome) in joined.into_iter().enumerate() {
        match outcome {
            Ok(results) => {
                for (i, value) in results {
                    slots[i] = Some(value);
                }
            }
            Err(payload) => {
                if first_panic.is_none() {
                    #[allow(clippy::cast_possible_truncation)]
                    let worker = worker as u32;
                    first_panic = Some(WorkerPanic::from_payload(worker, payload));
                }
            }
        }
    }

    if let Some(panic) = first_panic {
        tracer.record(
            0,
            EventKind::WorkerPanic {
                worker: panic.worker,
            },
        );
        return Err(panic);
    }

    Ok(slots
        .into_iter()
        .map(|slot| slot.expect("every cell index was claimed by exactly one worker"))
        .collect())
}

/// One worker's share of a profiled pool run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerProfile {
    /// Cells this worker computed.
    pub items: u64,
    /// Host nanoseconds spent inside `f`.
    pub busy_ns: u64,
    /// Host nanoseconds from the worker's first to last action (claiming,
    /// computing, and banking results). `wall_ns - busy_ns` is the
    /// worker's scheduling/contention overhead.
    pub wall_ns: u64,
}

/// The per-worker breakdown [`parallel_map_profiled`] returns alongside
/// the results — the diagnostic view of how the pool actually ran.
///
/// Everything here is host wall-clock (the diagnostic domain): it never
/// feeds a serialized report, only human-readable output. The *results*
/// of a profiled run are still byte-identical to [`parallel_map`]'s.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolProfile {
    /// Workers the caller asked for.
    pub requested_workers: usize,
    /// Workers actually spawned (requested, clamped to the cell count
    /// only — **not** to the host, so oversubscription stays visible).
    pub spawned_workers: usize,
    /// Host threads available when the pool ran.
    pub host_threads: usize,
    /// Per-worker breakdown, by worker index.
    pub workers: Vec<WorkerProfile>,
    /// Host nanoseconds the coordinator spent merging results.
    pub merge_ns: u64,
    /// Host nanoseconds for the whole call.
    pub wall_ns: u64,
}

impl PoolProfile {
    /// `true` when more workers ran than the host has threads — the
    /// configuration the production pool's clamp exists to avoid.
    #[must_use]
    pub fn oversubscribed(&self) -> bool {
        self.spawned_workers > self.host_threads
    }

    /// Host nanoseconds spent inside `f`, summed over workers.
    #[must_use]
    pub fn busy_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).sum()
    }

    /// The breakdown as indented human-readable text.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pool: {} requested, {} spawned, host has {} thread(s){}",
            self.requested_workers,
            self.spawned_workers,
            self.host_threads,
            if self.oversubscribed() {
                " [oversubscribed]"
            } else {
                ""
            }
        );
        for (i, w) in self.workers.iter().enumerate() {
            let busy_pct = if w.wall_ns == 0 {
                0.0
            } else {
                w.busy_ns as f64 / w.wall_ns as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "  worker {i}: {} items, busy {:.1}ms of {:.1}ms ({busy_pct:.0}%)",
                w.items,
                w.busy_ns as f64 / 1e6,
                w.wall_ns as f64 / 1e6,
            );
        }
        let _ = writeln!(
            out,
            "  merge {:.1}ms, total wall {:.1}ms",
            self.merge_ns as f64 / 1e6,
            self.wall_ns as f64 / 1e6,
        );
        out
    }
}

/// [`parallel_map_traced`] with a per-worker host-time breakdown — the
/// tool for diagnosing *the pool itself* (idle workers, oversubscription,
/// merge cost). Unlike the production path this does **not** clamp the
/// worker count to the host's threads: running 4 workers on 1 core is
/// exactly the pathology the profile exists to show.
///
/// The result `Vec` is byte-identical to [`parallel_map`]'s for the same
/// inputs; only the [`PoolProfile`] varies run to run.
///
/// # Errors
///
/// Same as [`parallel_map`].
pub fn parallel_map_profiled<T, F>(
    threads: usize,
    cells: usize,
    tracer: &mut dyn Tracer,
    f: F,
) -> Result<(Vec<T>, PoolProfile), WorkerPanic>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    type WorkerOutcome<T> = Result<(Vec<(usize, T)>, WorkerProfile), Box<dyn Any + Send>>;

    let t_start = std::time::Instant::now();
    let requested = threads.max(1);
    let workers = requested.min(cells.max(1));
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;

    let joined: Vec<WorkerOutcome<T>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let w_start = std::time::Instant::now();
                    let mut prof = WorkerProfile::default();
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cells {
                            break;
                        }
                        let t0 = std::time::Instant::now();
                        let value = f(i);
                        prof.busy_ns += t0.elapsed().as_nanos() as u64;
                        prof.items += 1;
                        out.push((i, value));
                    }
                    prof.wall_ns = w_start.elapsed().as_nanos() as u64;
                    (out, prof)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(thread::ScopedJoinHandle::join)
            .collect()
    });

    let t_merge = std::time::Instant::now();
    let mut slots: Vec<Option<T>> = (0..cells).map(|_| None).collect();
    let mut profile = PoolProfile {
        requested_workers: requested,
        spawned_workers: workers,
        host_threads: host_threads(),
        workers: Vec::with_capacity(workers),
        merge_ns: 0,
        wall_ns: 0,
    };
    let mut first_panic: Option<WorkerPanic> = None;
    for (worker, outcome) in joined.into_iter().enumerate() {
        match outcome {
            Ok((results, wprof)) => {
                for (i, value) in results {
                    slots[i] = Some(value);
                }
                profile.workers.push(wprof);
            }
            Err(payload) => {
                profile.workers.push(WorkerProfile::default());
                if first_panic.is_none() {
                    #[allow(clippy::cast_possible_truncation)]
                    let worker = worker as u32;
                    first_panic = Some(WorkerPanic::from_payload(worker, payload));
                }
            }
        }
    }

    if let Some(panic) = first_panic {
        tracer.record(
            0,
            EventKind::WorkerPanic {
                worker: panic.worker,
            },
        );
        return Err(panic);
    }

    let out = slots
        .into_iter()
        .map(|slot| slot.expect("every cell index was claimed by exactly one worker"))
        .collect();
    profile.merge_ns = t_merge.elapsed().as_nanos() as u64;
    profile.wall_ns = t_start.elapsed().as_nanos() as u64;
    Ok((out, profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::TraceBuffer;

    #[test]
    fn matches_sequential_map_for_any_thread_count() {
        let expected: Vec<usize> = (0..37).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 4, 8] {
            let got = parallel_map(threads, 37, |i| i * 3 + 1).unwrap();
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        assert_eq!(parallel_map(4, 0, |i| i).unwrap(), Vec::<usize>::new());
        assert_eq!(parallel_map(8, 1, |i| i + 10).unwrap(), vec![10]);
        assert_eq!(parallel_map(1, 3, |i| i).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn worker_panic_is_one_clean_error() {
        let err = parallel_map(4, 16, |i| {
            assert!(i != 7, "cell seven exploded");
            i
        })
        .unwrap_err();
        assert!(err.message.contains("cell seven exploded"), "{err}");
        assert!(err.to_string().contains("panicked"));
    }

    #[test]
    fn worker_panic_is_recorded_as_an_obs_event() {
        let mut buf = TraceBuffer::new();
        let err = parallel_map_traced(2, 4, &mut buf, |i| {
            assert!(i != 2, "boom");
            i
        })
        .unwrap_err();
        assert_eq!(buf.len(), 1);
        match buf.events()[0].kind {
            EventKind::WorkerPanic { worker } => assert_eq!(worker, err.worker),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn resume_rethrows_the_original_payload() {
        let err = parallel_map(2, 2, |i| {
            assert!(i != 1, "original payload");
            i
        })
        .unwrap_err();
        let rethrown = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || err.resume()))
            .unwrap_err();
        let msg = rethrown.downcast_ref::<&str>().map_or_else(
            || {
                rethrown
                    .downcast_ref::<String>()
                    .cloned()
                    .unwrap_or_default()
            },
            |s| (*s).to_string(),
        );
        assert!(msg.contains("original payload"), "{msg}");
    }

    #[test]
    fn auto_threads_is_at_least_one() {
        assert!(auto_threads() >= 1);
        assert!(host_threads() >= 1);
    }

    #[test]
    fn profiled_results_match_plain_and_account_every_item() {
        for threads in [1, 3, 8] {
            let expected = parallel_map(threads, 23, |i| i * 7).unwrap();
            let (got, prof) =
                parallel_map_profiled(threads, 23, &mut NullTracer, |i| i * 7).unwrap();
            assert_eq!(got, expected, "threads={threads}");
            assert_eq!(prof.requested_workers, threads);
            assert_eq!(prof.workers.len(), prof.spawned_workers);
            let items: u64 = prof.workers.iter().map(|w| w.items).sum();
            assert_eq!(items, 23, "every cell attributed to exactly one worker");
        }
    }

    #[test]
    fn profiled_pool_does_not_hide_oversubscription() {
        // Ask for far more workers than any host has: the profile must
        // show them all spawned (that visibility is its whole point).
        let (_, prof) = parallel_map_profiled(1024, 2048, &mut NullTracer, |i| i).unwrap();
        assert_eq!(prof.spawned_workers, 1024);
        assert!(prof.oversubscribed());
        let text = prof.render();
        assert!(text.contains("[oversubscribed]"), "{text}");
        assert!(text.contains("worker 0:"), "{text}");
    }

    #[test]
    fn profiled_panic_is_the_same_clean_error() {
        let err = parallel_map_profiled(4, 8, &mut NullTracer, |i| {
            assert!(i != 3, "profiled boom");
            i
        })
        .unwrap_err();
        assert!(err.message.contains("profiled boom"), "{err}");
    }

    #[test]
    fn zero_threads_clamp_to_one_worker() {
        assert_eq!(parallel_map(0, 4, |i| i + 1).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(parallel_map(0, 0, |i| i).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn more_threads_than_items_visits_each_index_exactly_once() {
        let calls: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        let got = parallel_map(32, 3, |i| {
            calls[i].fetch_add(1, Ordering::Relaxed);
            i * 2
        })
        .unwrap();
        assert_eq!(got, vec![0, 2, 4]);
        for (i, c) in calls.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "cell {i} recomputed");
        }
    }

    /// The worker claiming the final index has already banked every
    /// earlier result; its panic must still discard the whole map and
    /// surface the original (non-string) payload intact through
    /// [`WorkerPanic::resume`].
    #[test]
    fn panic_on_the_last_index_carries_the_original_payload() {
        #[derive(Debug, PartialEq)]
        struct CellBlew(usize);

        let cells = 9;
        let err = parallel_map(4, cells, |i| {
            if i == cells - 1 {
                std::panic::panic_any(CellBlew(i));
            }
            i
        })
        .unwrap_err();
        assert_eq!(err.message, "<non-string panic payload>");
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || err.resume()))
            .unwrap_err();
        let blew = payload
            .downcast::<CellBlew>()
            .expect("resume re-raises the exact payload the worker threw");
        assert_eq!(*blew, CellBlew(cells - 1));
    }
}
