//! A small, deterministic, dependency-free property-testing harness that
//! mirrors the subset of the `proptest` 1.x API this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the shape it needs: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`/`prop_filter`, [`any`], [`Just`], [`prop_oneof!`], ranges as
//! strategies, tuple strategies, and `prop::collection::vec`.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * no shrinking — a failing case reports its assertion message only;
//! * a fixed case count (256) with a deterministic per-test seed, so runs
//!   are reproducible without a persistence file;
//! * strategies generate values directly instead of building value trees.
//!
//! Like upstream, the harness honours `*.proptest-regressions` files:
//! for a test file `tests/foo.rs`, seeds recorded in
//! `tests/foo.proptest-regressions` (lines of the form `cc <hex>`, where
//! the first 16 hex digits are the case's RNG seed) are replayed before
//! any novel cases, so a once-failing case is re-checked on every
//! `cargo test` run forever. When a novel case fails, the panic message
//! includes the exact `cc` line to append. See DESIGN.md ("Testing").

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving every strategy (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A failed test case (what `prop_assert!` returns early with).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Builds a failure from a message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A source of test values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 10000 consecutive values",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Weighted union of boxed strategies — what [`prop_oneof!`] builds.
#[derive(Debug)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union from weighted arms.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total.max(1));
        for (w, strat) in &self.arms {
            if pick < u64::from(*w) {
                return strat.generate(rng);
            }
            pick -= u64::from(*w);
        }
        self.arms[self.arms.len() - 1].1.generate(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` strategy with a length drawn from `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }
}

/// Number of cases each property runs.
pub const CASES: u32 = 256;

fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The regression file recording failures for a test source file:
/// `tests/foo.rs` → `tests/foo.proptest-regressions` (upstream's
/// convention). `source_file` is a `file!()` path, which is relative to
/// the *workspace* root, while tests run with the *package* root as
/// their working directory — so fall back to re-anchoring the
/// `tests/…`/`src/…` suffix on `CARGO_MANIFEST_DIR` when the plain path
/// does not resolve.
fn regression_file(source_file: &str) -> Option<std::path::PathBuf> {
    let recorded = std::path::Path::new(source_file).with_extension("proptest-regressions");
    if recorded.exists() {
        return Some(recorded);
    }
    let manifest = std::env::var_os("CARGO_MANIFEST_DIR")?;
    for anchor in ["tests/", "src/"] {
        if let Some(pos) = source_file.rfind(anchor) {
            let candidate = std::path::Path::new(&manifest)
                .join(&source_file[pos..])
                .with_extension("proptest-regressions");
            if candidate.exists() {
                return Some(candidate);
            }
        }
    }
    None
}

/// Parses `cc <hex…>` lines into replay seeds (the first 16 hex digits
/// of each recorded hash are the failing case's RNG seed). Comment
/// lines (`#`) and malformed lines are skipped, like upstream.
fn regression_seeds(contents: &str) -> Vec<u64> {
    contents
        .lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let hex: String = rest
                .chars()
                .take_while(char::is_ascii_alphanumeric)
                .collect();
            u64::from_str_radix(hex.get(0..16)?, 16).ok()
        })
        .collect()
}

/// The persistable `cc` line for a failing case: 16 hex digits of RNG
/// seed followed by a 48-digit filler derived from the property name, so
/// the line has upstream's 64-digit shape and stays greppable.
fn cc_line(name: &str, seed: u64) -> String {
    let filler = fnv1a(name);
    format!(
        "cc {seed:016x}{:016x}{:016x}{:016x} # seeds a failing case of {name}",
        filler,
        filler.rotate_left(21),
        filler.rotate_left(42)
    )
}

/// Drives one property: `CASES` deterministic cases seeded from the test
/// name, panicking on the first failure.
pub fn run_cases<F>(name: &str, case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    run_seeds(name, &[], case);
}

/// [`run_cases`] plus regression replay: seeds recorded in the
/// `*.proptest-regressions` file next to `source_file` (a `file!()`
/// path) run *before* any novel cases. The [`proptest!`] macro calls
/// this, so committed regression files replay on every `cargo test`.
pub fn run_cases_persisted<F>(name: &str, source_file: &str, case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let recorded = regression_file(source_file)
        .and_then(|path| std::fs::read_to_string(path).ok())
        .map(|contents| regression_seeds(&contents))
        .unwrap_or_default();
    run_seeds(name, &recorded, case);
}

fn run_seeds<F>(name: &str, recorded: &[u64], mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for (i, seed) in recorded.iter().enumerate() {
        let mut rng = TestRng::new(*seed);
        if let Err(e) = case(&mut rng) {
            panic!(
                "property {name} failed replaying recorded regression {i} \
                 (seed {seed:#018x}): {e}"
            );
        }
    }
    let name_seed = fnv1a(name);
    for i in 0..CASES {
        let seed = name_seed ^ (u64::from(i) << 32);
        let mut rng = TestRng::new(seed);
        if let Err(e) = case(&mut rng) {
            panic!(
                "property {name} failed on case {i}: {e}\n\
                 to pin this case forever, append to the test file's \
                 .proptest-regressions file:\n{}",
                cc_line(name, seed)
            );
        }
    }
}

/// Declares property tests. Each function parameter is drawn from its
/// strategy; the body may use `prop_assert!`/`prop_assert_eq!` and may
/// `return Ok(())` to skip a case.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases_persisted(stringify!($name), file!(), |prop_rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), prop_rng);)+
                #[allow(unreachable_code)]
                (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })()
            });
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Weighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        Strategy, TestCaseError, TestRng,
    };

    /// Namespaced strategy modules, as upstream's prelude exposes them.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_in_bounds(v in 10u64..20, f in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in (0u32..5, 0u32..5).prop_map(|(x, y)| (x * 2, y))) {
            prop_assert!(a % 2 == 0);
            prop_assert!(b < 5);
        }

        #[test]
        fn filters_apply((a, b) in (0u64..100, 0u64..100).prop_filter("a<b", |(a, b)| a < b)) {
            prop_assert!(a < b);
        }

        #[test]
        fn oneof_picks_every_arm(v in prop_oneof![2 => 0u32..1, 1 => 10u32..11]) {
            prop_assert!(v == 0 || v == 10);
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u8..255, 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut one = Vec::new();
        let mut two = Vec::new();
        crate::run_cases("det", |rng| {
            one.push(rng.next_u64());
            Ok(())
        });
        crate::run_cases("det", |rng| {
            two.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(one, two);
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic_with_message() {
        crate::run_cases("always_fails", |_| Err(TestCaseError::fail("nope")));
    }

    #[test]
    fn regression_lines_parse_like_upstream() {
        let contents = "\
# Seeds for failure cases proptest has generated in the past.
# It is recommended to check this file in to source control.
cc 18515e164f0f1608855d8ebec3e81c61caf0c5b63d7cb09047dd8e8a5b15f233 # shrinks to x = 3
cc 00000000000000ff0000000000000000000000000000000000000000000000aa
not a cc line
cc short";
        assert_eq!(
            crate::regression_seeds(contents),
            vec![0x1851_5e16_4f0f_1608, 0x0000_0000_0000_00ff]
        );
    }

    #[test]
    fn cc_lines_round_trip_through_the_parser() {
        let line = crate::cc_line("my_property", 0xDEAD_BEEF_0BAD_F00D);
        assert_eq!(crate::regression_seeds(&line), vec![0xDEAD_BEEF_0BAD_F00D]);
        // Upstream shape: 64 hex digits after "cc ".
        let hex: String = line
            .strip_prefix("cc ")
            .unwrap()
            .chars()
            .take_while(char::is_ascii_alphanumeric)
            .collect();
        assert_eq!(hex.len(), 64);
    }

    #[test]
    fn recorded_seeds_replay_before_novel_cases() {
        let mut first = None;
        crate::run_seeds("replay_order", &[0x1234], |rng| {
            first.get_or_insert(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, Some(TestRng::new(0x1234).next_u64()));
    }

    #[test]
    #[should_panic(expected = "replaying recorded regression")]
    fn replay_failures_name_the_recorded_seed() {
        crate::run_seeds("replay_fails", &[0x1234], |_| {
            Err(TestCaseError::fail("still broken"))
        });
    }

    #[test]
    fn regression_files_are_discovered_next_to_the_source() {
        let dir = std::env::temp_dir().join("proptest-regression-discovery");
        std::fs::create_dir_all(&dir).unwrap();
        let recorded = dir.join("example.proptest-regressions");
        std::fs::write(&recorded, "cc 00000000000000aa0000...\n").unwrap();
        let source = dir.join("example.rs");
        assert_eq!(
            crate::regression_file(source.to_str().unwrap()),
            Some(recorded.clone())
        );
        std::fs::remove_file(&recorded).unwrap();
        assert_eq!(crate::regression_file(source.to_str().unwrap()), None);
    }

    #[test]
    fn novel_failure_message_carries_a_persistable_cc_line() {
        let panic = std::panic::catch_unwind(|| {
            crate::run_seeds("emit_cc", &[], |_| Err(TestCaseError::fail("boom")));
        })
        .expect_err("property must fail");
        let message = panic
            .downcast_ref::<String>()
            .expect("panic carries a String");
        let cc: Vec<u64> = crate::regression_seeds(message);
        assert_eq!(cc.len(), 1, "message embeds exactly one cc line");
        // The embedded seed reproduces the failing case's RNG stream.
        assert_eq!(cc[0], crate::fnv1a("emit_cc"));
    }
}
