//! A small, deterministic, dependency-free stand-in for the subset of the
//! `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the trait surface it needs: [`Rng`], [`SeedableRng`], and the
//! [`rngs::SmallRng`]/[`rngs::StdRng`] generators. The value streams are
//! *not* those of upstream `rand` — every consumer in this repository only
//! relies on determinism (same seed ⇒ same stream), uniformity, and the
//! API shape, never on specific draws.
//!
//! The core generator is SplitMix64 (Steele, Lea & Flood, OOPSLA'14):
//! one 64-bit state word, a Weyl increment, and a finalizing mix — fast,
//! full-period, and trivially seedable from a `u64`.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: raw uniform words.
pub trait RngCore {
    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   u64 => next_u64, usize => next_u64,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   i64 => next_u64, isize => next_u64);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a range.
///
/// Mirrors upstream's shape: one *blanket* [`SampleRange`] impl over this
/// trait, so integer-literal ranges unify with the call site's expected
/// type instead of falling back to `i32`.
pub trait SampleUniform: Sized {
    /// A uniform value in `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// A uniform value in `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                // Widening-multiply range reduction (Lemire); the tiny bias
                // is irrelevant here — determinism is what matters.
                let word = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                lo + word as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return Standard::sample(rng);
                }
                Self::sample_exclusive(rng, lo, hi + 1)
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_sint {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                // Shift into the unsigned counterpart so the span never
                // overflows, sample there, shift back.
                let span = hi.wrapping_sub(lo) as $u as u64;
                let word = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                lo.wrapping_add(word as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return Standard::sample(rng);
                }
                Self::sample_exclusive(rng, lo, hi.wrapping_add(1))
            }
        }
    )*};
}

impl_sample_uniform_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let unit: $t = Standard::sample(rng);
                lo + (hi - lo) * unit
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                Self::sample_exclusive(rng, lo, hi)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Slices that [`Rng::fill`] can populate.
pub trait Fill {
    /// Overwrites `self` with uniform data.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

macro_rules! impl_fill_words {
    ($($t:ty),* $(,)?) => {$(
        impl Fill for [$t] {
            fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
                for v in self.iter_mut() {
                    *v = Standard::sample(rng);
                }
            }
        }
    )*};
}

impl_fill_words!(u16, u32, u64, f32, f64);

/// The user-facing generator interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// A uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit: f64 = Standard::sample(self);
        unit < p
    }

    /// Fills `dest` with uniform data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill_from(self);
    }
}

impl<R: RngCore> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` (the only path this repo uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for (i, b) in seed.as_mut().iter_mut().enumerate() {
            // Spread the u64 over the seed bytes with a Weyl sequence.
            let word = state.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            *b = (word >> ((i % 8) * 8)) as u8;
        }
        Self::from_seed(seed)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SmallRng {
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            SmallRng::mix(self.state)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: [u8; 8]) -> SmallRng {
            SmallRng {
                state: u64::from_le_bytes(seed),
            }
        }

        fn seed_from_u64(state: u64) -> SmallRng {
            SmallRng { state }
        }
    }

    /// The "standard" generator — same engine, distinct stream constant.
    #[derive(Clone, Debug)]
    pub struct StdRng(SmallRng);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 8];

        fn from_seed(seed: [u8; 8]) -> StdRng {
            StdRng(SmallRng::from_seed(seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(0usize..3);
            assert!(i < 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.8)).count();
        assert!((7500..8500).contains(&hits), "got {hits}");
    }

    #[test]
    fn fill_covers_whole_slice() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill(buf.as_mut_slice());
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn inclusive_full_range_is_defined() {
        let mut rng = SmallRng::seed_from_u64(11);
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
    }
}
