//! Executable attack scenarios.
//!
//! Each function builds a fresh system guarded by the given mechanism,
//! stages victim and attacker tasks, launches the attack through the
//! ordinary accelerator path, and reports what actually happened. These
//! are the measurements behind the executable rows of Table 3.

use crate::cell::Cell;
use crate::mechanisms::Mechanism;
use capchecker::{CheckerMode, HeteroSystem, TaskRequest};
use hetsim::{Access, MasterId, TaskId};

/// Layout facts the attacker "knows" (addresses are not secrets in the
/// threat model — the attacker wrote or observed the allocator).
struct Fixture {
    sys: HeteroSystem,
    attacker: TaskId,
    /// A victim buffer several pages away from the attacker's.
    victim_far: u64,
    /// The victim object id of `victim_far` within its own task.
    victim_far_obj: u16,
    /// A victim buffer sharing a 4 kB page with the attacker's buffer.
    victim_same_page: u64,
    victim_same_page_obj: u16,
    /// The attacker's own second buffer (intra-task target).
    own_second: u64,
}

fn fixture(mech: Mechanism) -> Fixture {
    let mut sys = mech.system();
    // Victim first: a small buffer, a 16 KiB pad, and another small
    // buffer. The pad pushes the last buffer (and everything after it)
    // several pages past the first.
    let victim = sys
        .allocate_task(&TaskRequest::accel("victim", "accel").rw_buffers([64, 16384, 64]))
        .expect("victim allocates");
    let attacker = sys
        .allocate_task(&TaskRequest::accel("attacker", "accel").rw_buffers([64, 64]))
        .expect("attacker allocates");

    let v = sys.cpu_layout(victim).expect("victim layout");
    let a = sys.cpu_layout(attacker).expect("attacker layout");
    let page = 4096;
    assert_ne!(
        v.buffers[0].base / page,
        a.buffers[0].base / page,
        "far victim is off-page"
    );
    assert_eq!(
        v.buffers[2].base / page,
        a.buffers[0].base / page,
        "near victim shares the page"
    );

    // Seed the victim buffers with recognisable secrets.
    sys.write_buffer(victim, 0, 0, &[0x51; 64])
        .expect("seed far secret");
    sys.write_buffer(victim, 2, 0, &[0x52; 64])
        .expect("seed near secret");

    Fixture {
        victim_far: v.buffers[0].base,
        victim_far_obj: 0,
        victim_same_page: v.buffers[2].base,
        victim_same_page_obj: 2,
        own_second: a.buffers[1].base,
        sys,
        attacker,
    }
}

/// Attempts a 4-byte read of physical address `target` through the
/// attacker's object-0 interface, forging Coarse object-ID bits when the
/// system uses them. Returns `true` if the data was obtained.
fn attempt_read(fx: &mut Fixture, target: u64, forged_object: u16) -> bool {
    let coarse = fx
        .sys
        .checker()
        .is_some_and(|c| c.mode() == CheckerMode::Coarse)
        .then(|| *fx.sys.checker().expect("checker exists").config());
    let visible_base = fx.sys.accel_layout(fx.attacker).expect("layout").buffers[0].base;
    let bus_target = match coarse {
        Some(cfg) => cfg.coarse_tag_address(forged_object, target),
        None => target,
    };
    let offset = bus_target.wrapping_sub(visible_base);
    let mut got = false;
    fx.sys
        .run_accel_task(fx.attacker, |eng| {
            got = eng.load(0, offset, 4).is_ok();
            Ok(())
        })
        .expect("attack kernel runs");
    got
}

/// The buffer-overread/overwrite ladder behind Table 3 group (a): probes
/// progressively nearer targets and reports the finest granularity at
/// which the mechanism held.
#[must_use]
pub fn spatial_cell(mech: Mechanism) -> Cell {
    let mut fx = fixture(mech);
    let (far, far_obj) = (fx.victim_far, fx.victim_far_obj);
    let (near, near_obj) = (fx.victim_same_page, fx.victim_same_page_obj);
    let own_second = fx.own_second;
    // 1. Cross-task, cross-page.
    if attempt_read(&mut fx, far, far_obj) {
        return Cell::NotProtected;
    }
    // 2. Cross-task, same page as an attacker buffer.
    if attempt_read(&mut fx, near, near_obj) {
        return Cell::Page;
    }
    // 3. Same task, wrong object (buffer-0 pointer reaching buffer 1).
    if attempt_read(&mut fx, own_second, 1) {
        return Cell::Task;
    }
    Cell::Object
}

/// Untrusted pointer offset (CWE-823): the out-of-range index arrives as
/// *data* in the attacker's input buffer, and the kernel dereferences it
/// unchecked — the "array index from unsanitized input" case of §5.2.3.
#[must_use]
pub fn untrusted_offset_cell(mech: Mechanism) -> Cell {
    let mut fx = fixture(mech);
    let visible_base = fx.sys.accel_layout(fx.attacker).expect("layout").buffers[0].base;
    let (far, far_obj) = (fx.victim_far, fx.victim_far_obj);
    let (near, near_obj) = (fx.victim_same_page, fx.victim_same_page_obj);
    let own_second = fx.own_second;

    let mut probe = |target: u64, forged_object: u16| -> bool {
        let coarse = fx
            .sys
            .checker()
            .is_some_and(|c| c.mode() == CheckerMode::Coarse)
            .then(|| *fx.sys.checker().expect("checker exists").config());
        let bus_target = match coarse {
            Some(cfg) => cfg.coarse_tag_address(forged_object, target),
            None => target,
        };
        // The hostile offset is planted in the input data…
        let evil_offset = bus_target.wrapping_sub(visible_base);
        fx.sys
            .write_buffer(fx.attacker, 0, 0, &evil_offset.to_le_bytes())
            .expect("plant offset");
        let mut got = false;
        fx.sys
            .run_accel_task(fx.attacker, |eng| {
                // …and the kernel trusts it.
                let idx = eng.load_u64(0, 0)?;
                got = eng.load(0, idx, 4).is_ok();
                Ok(())
            })
            .expect("attack kernel runs");
        got
    };

    if probe(far, far_obj) {
        return Cell::NotProtected;
    }
    if probe(near, near_obj) {
        return Cell::Page;
    }
    if probe(own_second, 1) {
        return Cell::Task;
    }
    Cell::Object
}

/// Use-after-free (CWE-416): a stale DMA master keeps issuing with a dead
/// task's identity after the driver deallocated it.
#[must_use]
pub fn use_after_free_blocked(mech: Mechanism) -> bool {
    let mut sys = mech.system();
    let t = sys
        .allocate_task(&TaskRequest::accel("doomed", "accel").rw_buffers([64]))
        .expect("allocates");
    let base = sys.cpu_layout(t).expect("layout").buffers[0].base;
    sys.deallocate_task(t).expect("deallocates");
    sys.check_raw(&Access::read(MasterId(9), t, base, 4))
        .is_err()
}

/// Assignment of a fixed address to a pointer (CWE-587): the accelerator
/// dereferences a hard-coded address in OS-owned memory.
#[must_use]
pub fn fixed_address_blocked(mech: Mechanism) -> bool {
    let mut fx = fixture(mech);
    // Below the heap: kernel/OS territory.
    !attempt_read(&mut fx, 0x2000, 0)
}

/// Access of an uninitialized pointer (CWE-824): a zero-valued pointer
/// register is dereferenced.
#[must_use]
pub fn uninitialized_pointer_blocked(mech: Mechanism) -> bool {
    let mut fx = fixture(mech);
    !attempt_read(&mut fx, 0, 0)
}

/// Heap inspection (CWE-244): a follow-on task allocates the memory a
/// finished task used and looks for leftovers. The trusted driver's
/// deallocation scrub is the defence (Table 3 group c: everyone passes,
/// because everyone shares the driver).
#[must_use]
pub fn heap_inspection_prevented(mech: Mechanism) -> bool {
    let mut sys = mech.system();
    let secret_holder = sys
        .allocate_task(&TaskRequest::accel("holder", "accel").rw_buffers([256]))
        .expect("allocates");
    sys.write_buffer(secret_holder, 0, 0, &[0xAA; 256])
        .expect("seed secret");
    let base = sys.cpu_layout(secret_holder).expect("layout").buffers[0].base;
    sys.deallocate_task(secret_holder).expect("deallocates");

    let snoop = sys
        .allocate_task(&TaskRequest::accel("snoop", "accel").rw_buffers([256]))
        .expect("allocates");
    assert_eq!(
        sys.cpu_layout(snoop).expect("layout").buffers[0].base,
        base,
        "first-fit must reuse the block for the scenario to be meaningful"
    );
    let mut leaked = false;
    sys.run_accel_task(snoop, |eng| {
        for i in 0..32 {
            if eng.load_u64(0, i)? != 0 {
                leaked = true;
            }
        }
        Ok(())
    })
    .expect("snoop runs");
    !leaked
}

/// Capability forging by DMA: the attacker overwrites a valid capability
/// stored in memory it can write. The write may succeed — but the stored
/// tag must be gone, so the CPU can never dereference the forgery.
#[must_use]
pub fn capability_forging_blocked(mech: Mechanism) -> bool {
    let mut sys = mech.system();
    let t = sys
        .allocate_task(&TaskRequest::accel("forger", "accel").rw_buffers([64]))
        .expect("allocates");
    let base = sys.cpu_layout(t).expect("layout").buffers[0].base;
    // The CPU legitimately stores a valid capability in the buffer (a
    // CHERI CPU task keeping a pointer there).
    let cap = cheri::Capability::root()
        .set_bounds(0, 1 << 20)
        .expect("bounds");
    sys.memory_mut()
        .write_capability(base, cap.compress(), true)
        .expect("host store");
    assert!(sys.memory().tag(base));

    // The accelerator overwrites it with attacker-chosen bits.
    sys.run_accel_task(t, |eng| {
        eng.store_u64(0, 0, u64::MAX)?;
        eng.store_u64(0, 1, u64::MAX)?;
        Ok(())
    })
    .expect("forger runs");

    // Whatever the bits now say, the tag is clear: unforgeable.
    !sys.memory().tag(base)
}

/// After a blocked access on a CapChecker system, the exception is
/// latched globally and traced to the offending pointer (§5.2.2).
#[must_use]
pub fn exception_reporting_works(mech: Mechanism) -> bool {
    let mut fx = fixture(mech);
    let (far, far_obj) = (fx.victim_far, fx.victim_far_obj);
    let _ = attempt_read(&mut fx, far, far_obj);
    match fx.sys.checker() {
        Some(c) => c.exception_flag() && !c.exception_entries(fx.attacker).is_empty(),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_ladder_matches_table3_group_a() {
        assert_eq!(spatial_cell(Mechanism::NoMethod), Cell::NotProtected);
        assert_eq!(spatial_cell(Mechanism::Iopmp), Cell::Task);
        assert_eq!(spatial_cell(Mechanism::Iommu), Cell::Page);
        assert_eq!(spatial_cell(Mechanism::Snpu), Cell::Task);
        assert_eq!(spatial_cell(Mechanism::CapCoarse), Cell::Task);
        assert_eq!(spatial_cell(Mechanism::CapFine), Cell::Object);
    }

    #[test]
    fn untrusted_offsets_match_the_ladder_where_pointer_aware() {
        assert_eq!(
            untrusted_offset_cell(Mechanism::NoMethod),
            Cell::NotProtected
        );
        assert_eq!(untrusted_offset_cell(Mechanism::Iommu), Cell::Page);
        assert_eq!(untrusted_offset_cell(Mechanism::CapCoarse), Cell::Task);
        assert_eq!(untrusted_offset_cell(Mechanism::CapFine), Cell::Object);
    }

    #[test]
    fn temporal_attacks_blocked_everywhere_but_no_method() {
        for m in Mechanism::ALL {
            let expected = m != Mechanism::NoMethod;
            assert_eq!(use_after_free_blocked(m), expected, "{m}: UAF");
            assert_eq!(fixed_address_blocked(m), expected, "{m}: fixed address");
            assert_eq!(
                uninitialized_pointer_blocked(m),
                expected,
                "{m}: uninit pointer"
            );
        }
    }

    #[test]
    fn driver_scrub_defeats_heap_inspection_for_everyone() {
        for m in Mechanism::ALL {
            assert!(heap_inspection_prevented(m), "{m}");
        }
    }

    #[test]
    fn tags_never_survive_dma_writes() {
        for m in Mechanism::ALL {
            assert!(capability_forging_blocked(m), "{m}");
        }
    }

    #[test]
    fn capchecker_latches_and_traces_exceptions() {
        assert!(exception_reporting_works(Mechanism::CapFine));
        assert!(exception_reporting_works(Mechanism::CapCoarse));
        assert!(!exception_reporting_works(Mechanism::Iommu));
    }
}
