//! Table 3 cell values.

use ioprotect::Granularity;
use std::fmt;

/// One cell of Table 3: how a mechanism fares against a weakness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cell {
    /// The weakness is not mitigated (✗).
    NotProtected,
    /// Mitigated at page granularity (PG).
    Page,
    /// Mitigated at task granularity (TA).
    Task,
    /// Mitigated at object granularity (OB) — the finest.
    Object,
    /// Fully mitigated, granularity not meaningful (✓).
    Protected,
    /// Out of scope for accelerators (NA).
    NotApplicable,
}

impl Cell {
    /// The paper's notation for the cell.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            Cell::NotProtected => "X",
            Cell::Page => "PG",
            Cell::Task => "TA",
            Cell::Object => "OB",
            Cell::Protected => "OK",
            Cell::NotApplicable => "NA",
        }
    }
}

impl From<Granularity> for Cell {
    fn from(g: Granularity) -> Cell {
        match g {
            Granularity::Unprotected => Cell::NotProtected,
            Granularity::Page => Cell::Page,
            Granularity::Task => Cell::Task,
            Granularity::Object => Cell::Object,
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_match_the_paper() {
        assert_eq!(Cell::NotProtected.symbol(), "X");
        assert_eq!(Cell::Page.symbol(), "PG");
        assert_eq!(Cell::Task.symbol(), "TA");
        assert_eq!(Cell::Object.symbol(), "OB");
        assert_eq!(Cell::NotApplicable.symbol(), "NA");
    }

    #[test]
    fn granularity_conversion() {
        assert_eq!(Cell::from(Granularity::Object), Cell::Object);
        assert_eq!(Cell::from(Granularity::Unprotected), Cell::NotProtected);
    }
}
