//! Table 3: the CWE memory-safety weakness matrix.
//!
//! Rows marked *measured* are produced by running the executable attacks
//! in [`crate::attacks`] against every mechanism; the remaining rows are
//! the paper's analysis encoded as data (they concern software/driver
//! properties or weaknesses with no accelerator analogue).

use crate::attacks;
use crate::cell::Cell;
use crate::mechanisms::Mechanism;

/// One row of Table 3.
#[derive(Clone, Debug)]
pub struct CweRow {
    /// CWE identifiers covered by the row.
    pub ids: &'static [u32],
    /// Weakness name (or group description).
    pub name: &'static str,
    /// The paper's group label, a–f.
    pub group: char,
    /// Cells in [`Mechanism::ALL`] order.
    pub cells: [Cell; 6],
    /// Whether the cells were measured by running attacks (vs. analysis).
    pub measured: bool,
}

fn per_mechanism(f: impl Fn(Mechanism) -> Cell) -> [Cell; 6] {
    let mut cells = [Cell::NotApplicable; 6];
    for (i, m) in Mechanism::ALL.into_iter().enumerate() {
        cells[i] = f(m);
    }
    cells
}

fn bool_cells(f: impl Fn(Mechanism) -> bool) -> [Cell; 6] {
    per_mechanism(|m| {
        if f(m) {
            Cell::Protected
        } else {
            Cell::NotProtected
        }
    })
}

const fn all(cell: Cell) -> [Cell; 6] {
    [cell; 6]
}

/// Builds the full Table 3, running the executable attacks.
#[must_use]
pub fn table3() -> Vec<CweRow> {
    vec![
        CweRow {
            ids: &[
                119, 120, 122, 123, 124, 125, 126, 127, 129, 131, 466, 680, 786, 787, 788, 805, 806,
            ],
            name: "Buffer overreads or overwrites",
            group: 'a',
            cells: per_mechanism(attacks::spatial_cell),
            measured: true,
        },
        CweRow {
            ids: &[761],
            name: "Free of pointer not at start of buffer",
            group: 'a',
            // Only a capability carries its allocation base with it; the
            // driver mirrors the parent capability off the shelf (§6.2).
            cells: [
                Cell::NotProtected,
                Cell::NotProtected,
                Cell::NotProtected,
                Cell::NotProtected,
                Cell::Task,
                Cell::Object,
            ],
            measured: false,
        },
        CweRow {
            ids: &[822],
            name: "Untrusted pointer dereference",
            group: 'a',
            // Requires unforgeable provenance: only the CapChecker binds a
            // pointer to the object it was issued for.
            cells: [
                Cell::NotProtected,
                Cell::NotProtected,
                Cell::NotProtected,
                Cell::NotProtected,
                Cell::Task,
                Cell::Object,
            ],
            measured: false,
        },
        CweRow {
            ids: &[823],
            name: "Untrusted pointer offset",
            group: 'a',
            cells: per_mechanism(attacks::untrusted_offset_cell),
            measured: true,
        },
        CweRow {
            ids: &[416],
            name: "Use after free / dangling pointer",
            group: 'b',
            cells: bool_cells(attacks::use_after_free_blocked),
            measured: true,
        },
        CweRow {
            ids: &[587],
            name: "Assignment of a fixed address to a pointer",
            group: 'b',
            cells: bool_cells(attacks::fixed_address_blocked),
            measured: true,
        },
        CweRow {
            ids: &[824],
            name: "Access of uninitialized pointer",
            group: 'b',
            cells: bool_cells(attacks::uninitialized_pointer_blocked),
            measured: true,
        },
        CweRow {
            ids: &[244],
            name: "Heap inspection",
            group: 'c',
            cells: bool_cells(attacks::heap_inspection_prevented),
            measured: true,
        },
        CweRow {
            ids: &[415, 590, 690, 763],
            name: "Double free / invalid release / unchecked NULL",
            group: 'c',
            // Temporal safety is the trusted driver's job for every
            // mechanism alike (assumption 3).
            cells: all(Cell::Protected),
            measured: false,
        },
        CweRow {
            ids: &[121, 562, 789],
            name: "Stack-based weaknesses",
            group: 'd',
            // Accelerator "stack" objects live in internal registers and
            // are never exposed to the CPU: not applicable.
            cells: all(Cell::NotApplicable),
            measured: false,
        },
        CweRow {
            ids: &[134, 762],
            name: "Format strings / mismatched memory routines",
            group: 'e',
            cells: all(Cell::NotApplicable),
            measured: false,
        },
        CweRow {
            ids: &[188, 198],
            name: "Reliance on data/memory layout, byte ordering",
            group: 'f',
            cells: all(Cell::NotProtected),
            measured: false,
        },
        CweRow {
            ids: &[401, 825],
            name: "Memory leak / expired pointer dereference",
            group: 'f',
            cells: all(Cell::NotProtected),
            measured: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline cells of the paper's Table 3 for the measured rows.
    #[test]
    fn measured_rows_match_the_paper() {
        let rows = table3();
        let overreads = &rows[0];
        assert_eq!(
            overreads.cells,
            [
                Cell::NotProtected,
                Cell::Task,
                Cell::Page,
                Cell::Task,
                Cell::Task,
                Cell::Object
            ]
        );
        let group_b: Vec<&CweRow> = rows.iter().filter(|r| r.group == 'b').collect();
        for row in group_b {
            assert_eq!(
                row.cells[0],
                Cell::NotProtected,
                "{}: no-method column",
                row.name
            );
            for cell in &row.cells[1..] {
                assert_eq!(*cell, Cell::Protected, "{}", row.name);
            }
        }
    }

    #[test]
    fn fine_is_never_coarser_than_coarse() {
        let rank = |c: &Cell| match c {
            Cell::NotProtected => 0,
            Cell::Page => 1,
            Cell::Task => 2,
            Cell::Object => 3,
            Cell::Protected => 4,
            Cell::NotApplicable => 5,
        };
        for row in table3() {
            if row.cells[5] == Cell::NotApplicable {
                continue;
            }
            assert!(
                rank(&row.cells[5]) >= rank(&row.cells[4]),
                "{}: Fine ({}) must dominate Coarse ({})",
                row.name,
                row.cells[5],
                row.cells[4]
            );
        }
    }

    #[test]
    fn every_cwe_id_appears_once() {
        let mut ids: Vec<u32> = table3()
            .iter()
            .flat_map(|r| r.ids.iter().copied())
            .collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate CWE ids across rows");
        assert!(n >= 30, "the paper's table covers 30+ CWE ids, got {n}");
    }
}
