//! The motivating attack of Figure 2.
//!
//! A video application runs a decoder task on the accelerator while an
//! attacker launches a concurrent *eavesdropper* task. The eavesdropper
//! attempts (1) an unauthorized read of the decoder's frame buffer — the
//! screen-sharing theft of §2 — and (2) capability forging: overwriting a
//! pointer capability the CPU keeps in memory, hoping the CPU will later
//! dereference the attacker's bounds.

use crate::mechanisms::Mechanism;
use capchecker::TaskRequest;
use cheri::{Capability, Perms};
use hetsim::Denial;

/// What the eavesdropper achieved.
#[derive(Clone, Debug)]
pub struct EavesdropperOutcome {
    /// Bytes of the confidential frame the attacker obtained (empty when
    /// the read was blocked).
    pub stolen: Vec<u8>,
    /// The denial the protection mechanism raised, if any.
    pub denial: Option<Denial>,
    /// Whether a *valid* (tagged) capability with attacker bits exists in
    /// memory after the overwrite attempt.
    pub capability_forged: bool,
    /// Whether the system latched an exception for the CPU to see.
    pub exception_visible: bool,
}

/// The secret pattern the decoder works on.
pub const FRAME_SECRET: u8 = 0xC5;

/// Runs the Figure 2 scenario on a system guarded by `mech`.
#[must_use]
pub fn run(mech: Mechanism) -> EavesdropperOutcome {
    let mut sys = mech.system();

    // The video app's decoder task, mid-call, with a confidential frame.
    let decoder = sys
        .allocate_task(&TaskRequest::accel("video decoder", "accel").rw_buffers([4096, 256]))
        .expect("decoder allocates");
    sys.write_buffer(decoder, 0, 0, &[FRAME_SECRET; 4096])
        .expect("frame upload");
    let decode = sys
        .run_accel_task(decoder, |eng| {
            // A slice of decode work (keeps the task plausibly "running").
            for i in 0..64 {
                let px = eng.load_u32(0, i)?;
                eng.store_u32(1, i % 32, px ^ 0xff)?;
            }
            Ok(())
        })
        .expect("decoder runs");
    if let Some(d) = decode.denial {
        panic!("benign decoder was denied: {d}");
    }

    // The CPU task also keeps a capability to its frame in memory (a
    // pointer spilled by the CHERI CPU), somewhere the eavesdropper's
    // buffer write could reach if unprotected.
    let frame_base = sys.cpu_layout(decoder).expect("layout").buffers[0].base;
    let spilled_cap = Capability::root()
        .set_bounds(frame_base, 4096)
        .expect("bounds")
        .and_perms(Perms::RW)
        .expect("perms");
    let cap_slot = sys.cpu_layout(decoder).expect("layout").buffers[1].base;
    sys.memory_mut()
        .write_capability(cap_slot, spilled_cap.compress(), true)
        .expect("spill");

    // The attacker's eavesdropper task.
    let eavesdropper = sys
        .allocate_task(&TaskRequest::accel("eavesdropper", "accel").rw_buffers([4096]))
        .expect("eavesdropper allocates");
    let own_base = sys.accel_layout(eavesdropper).expect("layout").buffers[0].base;

    let frame_offset = frame_base.wrapping_sub(own_base);
    let cap_offset = cap_slot.wrapping_sub(own_base);
    let mut stolen = Vec::new();
    let mut denial = None;
    sys.run_accel_task(eavesdropper, |eng| {
        // 1. Try to read the confidential frame.
        for i in 0..8u64 {
            match eng.load(0, frame_offset + i * 8, 8) {
                Ok(w) => stolen.extend_from_slice(&w.to_le_bytes()),
                Err(hetsim::ExecFault::Denied(d)) => {
                    denial = Some(d);
                    break;
                }
                Err(e) => panic!("unexpected platform fault: {e}"),
            }
        }
        // 2. Try to overwrite the spilled capability with forged bits
        //    granting the whole address space.
        let forged = Capability::root().compress().bits();
        let _ = eng.store(0, cap_offset, 8, forged as u64);
        let _ = eng.store(0, cap_offset + 8, 8, (forged >> 64) as u64);
        Ok(())
    })
    .expect("eavesdropper runs");

    // Forging succeeded only if the slot now holds the attacker's bits
    // AND still carries a valid tag.
    let (bits, tag) = sys
        .memory()
        .read_capability(cap_slot)
        .expect("cap slot readable");
    let forged_bits = Capability::root().compress().bits();
    let capability_forged = tag && bits.bits() == forged_bits;
    let exception_visible = sys.checker().is_some_and(|c| c.exception_flag());

    EavesdropperOutcome {
        stolen,
        denial,
        capability_forged,
        exception_visible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_protection_leaks_the_frame() {
        let out = run(Mechanism::NoMethod);
        assert!(!out.stolen.is_empty());
        assert!(out.stolen.iter().all(|b| *b == FRAME_SECRET));
        assert!(out.denial.is_none());
    }

    #[test]
    fn capchecker_blocks_the_theft_and_reports() {
        for mech in [Mechanism::CapFine, Mechanism::CapCoarse] {
            let out = run(mech);
            assert!(out.stolen.is_empty(), "{mech}: frame leaked");
            assert!(out.denial.is_some(), "{mech}: no denial raised");
            assert!(out.exception_visible, "{mech}: CPU never told");
        }
    }

    #[test]
    fn forged_capability_never_gains_a_tag() {
        for mech in Mechanism::ALL {
            let out = run(mech);
            assert!(
                !out.capability_forged,
                "{mech}: forged capability survived with a tag"
            );
        }
    }

    #[test]
    fn iommu_blocks_cross_task_but_iopmp_and_snpu_do_too() {
        for mech in [Mechanism::Iommu, Mechanism::Iopmp, Mechanism::Snpu] {
            let out = run(mech);
            assert!(out.stolen.is_empty(), "{mech}");
        }
    }
}
