//! Randomized attack campaigns.
//!
//! The scripted attacks in [`crate::attacks`] probe known weak spots; this
//! module hammers each mechanism with *thousands of random accesses* and
//! checks the paper's granularity guarantee as an invariant:
//!
//! > a request is granted **iff** it falls inside what the mechanism's
//! > granularity says the task may reach.
//!
//! For the Fine CapChecker that is "inside the object the request named";
//! for task-granular mechanisms "inside any of the task's buffers" (plus
//! the window/page slack they are documented to leak); for the IOMMU "in
//! a page the task maps"; for the unprotected system, everything.

use crate::mechanisms::Mechanism;
use capchecker::{HeteroSystem, TaskRequest};
use hetsim::{BufferRegion, TaskId, TaskLayout};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The outcome of one campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CampaignReport {
    /// Accesses attempted.
    pub attempts: u64,
    /// Accesses the mechanism granted.
    pub granted: u64,
    /// Accesses the mechanism denied.
    pub denied: u64,
    /// Granted accesses that the granularity model says should have been
    /// denied — must be zero for a sound mechanism.
    pub unsound_grants: u64,
    /// Denied accesses the model says should have passed — must be zero,
    /// or benign workloads would break ("no correct access blocked").
    pub false_denials: u64,
}

fn victim_layouts(sys: &HeteroSystem, tasks: &[TaskId]) -> Vec<TaskLayout> {
    tasks
        .iter()
        .map(|t| sys.cpu_layout(*t).expect("live task"))
        .collect()
}

fn within(regions: &[BufferRegion], addr: u64, len: u64) -> bool {
    regions
        .iter()
        .any(|r| addr >= r.base && addr + len <= r.end())
}

/// What the attacker's task may legitimately reach under each mechanism's
/// *documented* granularity (this is the oracle the fuzz checks against).
/// `via_obj` is the hardware port used; `claimed_obj` is the object ID the
/// attacker forged into the address bits (Coarse only).
fn reachable(
    mech: Mechanism,
    own: &TaskLayout,
    addr: u64,
    len: u64,
    via_obj: usize,
    claimed_obj: usize,
) -> bool {
    match mech {
        Mechanism::NoMethod => true,
        // Byte-granular regions, any of the task's buffers.
        Mechanism::Iopmp => within(&own.buffers, addr, len),
        // Any page the task's buffers touch.
        Mechanism::Iommu => own.buffers.iter().any(|r| {
            let first = r.base / 4096;
            let last = (r.end() - 1) / 4096;
            (first..=last).contains(&(addr / 4096))
                && (first..=last).contains(&((addr + len - 1) / 4096))
        }),
        // One window spanning min..max of the task's buffers.
        Mechanism::Snpu => {
            let lo = own.buffers.iter().map(|r| r.base).min().unwrap_or(0);
            let hi = own.buffers.iter().map(BufferRegion::end).max().unwrap_or(0);
            addr >= lo && addr + len <= hi
        }
        // The object the forged address bits name — the attacker controls
        // them, so *effectively* any own object (task granularity), but
        // each individual request is judged against the claimed object.
        Mechanism::CapCoarse => own
            .buffers
            .get(claimed_obj)
            .is_some_and(|r| addr >= r.base && addr + len <= r.end()),
        // Exactly the object the hardware port named.
        Mechanism::CapFine => {
            let r = own.buffers[via_obj];
            addr >= r.base && addr + len <= r.end()
        }
    }
}

/// Runs `attempts` random 1–8-byte reads from a two-buffer attacker task
/// against a three-buffer victim, checking every grant/denial against the
/// granularity oracle.
#[must_use]
pub fn campaign(mech: Mechanism, attempts: u64, seed: u64) -> CampaignReport {
    let mut sys = mech.system();
    let victim = sys
        .allocate_task(&TaskRequest::accel("victim", "accel").rw_buffers([96, 4096, 64]))
        .expect("victim allocates");
    let attacker = sys
        .allocate_task(&TaskRequest::accel("attacker", "accel").rw_buffers([128, 256]))
        .expect("attacker allocates");
    let own = sys.cpu_layout(attacker).expect("layout");
    let victims = victim_layouts(&sys, &[victim]);
    let visible = sys.accel_layout(attacker).expect("layout");

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut report = CampaignReport::default();
    // Candidate target pool: bytes around every buffer (own and victim),
    // plus totally wild addresses.
    let mut candidates: Vec<u64> = Vec::new();
    for r in own.buffers.iter().chain(victims[0].buffers.iter()) {
        for delta in [
            -16i64,
            -1,
            0,
            1,
            31,
            (r.size as i64) - 1,
            r.size as i64,
            r.size as i64 + 7,
        ] {
            candidates.push(r.base.wrapping_add_signed(delta));
        }
    }

    let coarse_cfg = sys
        .checker()
        .and_then(|c| (c.mode() == capchecker::CheckerMode::Coarse).then(|| *c.config()));

    for _ in 0..attempts {
        let via_obj = rng.gen_range(0..own.buffers.len());
        let len = *[1u64, 2, 4, 8]
            .get(rng.gen_range(0..4))
            .expect("len choices");
        let target = if rng.gen_bool(0.8) {
            candidates[rng.gen_range(0..candidates.len())]
        } else {
            rng.gen_range(0..sys.memory().size().saturating_sub(8))
        };
        // In Coarse mode the attacker forges object-ID bits at will.
        let claimed_obj = rng.gen_range(0..own.buffers.len() + 2);
        let bus_target = match coarse_cfg {
            Some(cfg) => cfg.coarse_tag_address(claimed_obj as u16, target),
            None => target,
        };
        let offset = bus_target.wrapping_sub(visible.buffers[via_obj].base);

        let mut granted = false;
        sys.run_accel_task(attacker, |eng| {
            granted = eng.load(via_obj, offset, len as u8).is_ok();
            Ok(())
        })
        .expect("probe kernel runs");

        report.attempts += 1;
        let should_pass = reachable(mech, &own, target, len, via_obj, claimed_obj);
        if granted {
            report.granted += 1;
            if !should_pass {
                report.unsound_grants += 1;
            }
        } else {
            report.denied += 1;
            if should_pass {
                report.false_denials += 1;
            }
        }
    }
    report
}

/// Runs a differential conformance campaign: the same seeded op streams
/// this module's mechanism fuzzing is built on, but replayed through
/// every checker implementation *and* the golden oracle, diffing each
/// verdict (see the `conformance` crate).
///
/// Attack campaigns ask "does the mechanism uphold its policy?"; the
/// conformance campaign asks "do all implementations of the mechanism
/// agree with the spec?" — together they bound both design and
/// implementation error.
#[must_use]
pub fn conformance_campaign(ops: u64, seed: u64) -> conformance::ConformanceReport {
    conformance::run_conformance(seed, ops)
}

/// Runs a bounded model-checking campaign: where [`conformance_campaign`]
/// *samples* long random streams, this *exhausts* every op interleaving
/// of a scaled-down model up to `depth` (see the `capcheri-mc` crate).
/// The two are complementary ends of the same spec: random streams reach
/// deep, rare interactions; BFS certifies there is no shallow corner
/// case at all.
#[must_use]
pub fn verify_campaign(depth: u32, tasks: u8, objects: u8) -> capcheri_mc::ExploreResult {
    capcheri_mc::explore(capcheri_mc::ExploreConfig {
        tasks,
        objects,
        ..capcheri_mc::ExploreConfig::new(depth)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const ATTEMPTS: u64 = 400;

    #[test]
    fn conformance_campaign_is_clean_and_deterministic() {
        let a = conformance_campaign(600, 0xF024);
        let b = conformance_campaign(600, 0xF024);
        assert!(a.is_clean(), "{}", a.summary());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn verify_campaign_is_clean_and_deterministic() {
        let a = verify_campaign(3, 2, 2);
        let b = verify_campaign(3, 2, 2);
        assert!(a.violation.is_none(), "{:?}", a.violation);
        assert_eq!(a.states, b.states);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.frontier_per_depth, b.frontier_per_depth);
    }

    #[test]
    fn every_mechanism_is_sound_and_complete_under_fuzzing() {
        for mech in Mechanism::ALL {
            let r = campaign(mech, ATTEMPTS, 0xF022);
            assert_eq!(
                r.unsound_grants, 0,
                "{mech}: granted something out of policy"
            );
            assert_eq!(r.false_denials, 0, "{mech}: denied a legitimate access");
            assert_eq!(r.attempts, ATTEMPTS);
        }
    }

    #[test]
    fn deny_rates_order_by_granularity() {
        // Finer mechanisms deny more of a hostile workload.
        let denied = |m| campaign(m, ATTEMPTS, 0xF023).denied;
        let none = denied(Mechanism::NoMethod);
        let page = denied(Mechanism::Iommu);
        let task = denied(Mechanism::Iopmp);
        let object = denied(Mechanism::CapFine);
        assert_eq!(none, 0);
        assert!(page > none);
        assert!(task >= page, "task ({task}) vs page ({page})");
        assert!(object >= task, "object ({object}) vs task ({task})");
    }

    #[test]
    fn campaigns_are_deterministic() {
        assert_eq!(
            campaign(Mechanism::CapCoarse, 100, 7),
            campaign(Mechanism::CapCoarse, 100, 7)
        );
    }
}
