//! # threatbench — the paper's security evaluation, executable
//!
//! The paper evaluates the CapChecker against the CWE memory-safety
//! weaknesses (Table 3) by *analysis*. This crate turns that analysis into
//! code: each weakness group that can be exercised in the simulated system
//! is an actual attack run against every protection mechanism, and the
//! observed outcome — blocked at what granularity — fills the table cell.
//!
//! It also implements the motivating attack of Figure 2
//! ([`eavesdropper`]): a malicious accelerator task that tries to read a
//! concurrent video-decoder's buffers and to forge a capability by
//! overwriting one in memory.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attacks;
mod cell;
pub mod cwe;
pub mod eavesdropper;
pub mod fuzz;
mod mechanisms;
pub mod recovery;

pub use cell::Cell;
pub use cwe::{table3, CweRow};
pub use mechanisms::Mechanism;
