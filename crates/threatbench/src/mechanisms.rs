//! The six protection columns of Table 3 as buildable systems.

use capchecker::{CheckerConfig, HeteroSystem, ProtectionChoice, SystemConfig};
use ioprotect::{IommuConfig, IopmpConfig};
use std::fmt;

/// One column of Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// No protection at all.
    NoMethod,
    /// RISC-V IOPMP.
    Iopmp,
    /// 4 kB-page IOMMU.
    Iommu,
    /// sNPU-style task windows.
    Snpu,
    /// CapChecker, Coarse provenance.
    CapCoarse,
    /// CapChecker, Fine provenance.
    CapFine,
}

impl Mechanism {
    /// All six, in the paper's column order.
    pub const ALL: [Mechanism; 6] = [
        Mechanism::NoMethod,
        Mechanism::Iopmp,
        Mechanism::Iommu,
        Mechanism::Snpu,
        Mechanism::CapCoarse,
        Mechanism::CapFine,
    ];

    /// Column header.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::NoMethod => "No Method",
            Mechanism::Iopmp => "IOPMP",
            Mechanism::Iommu => "IOMMU",
            Mechanism::Snpu => "sNPU",
            Mechanism::CapCoarse => "Coarse",
            Mechanism::CapFine => "Fine",
        }
    }

    /// The protection choice for a [`HeteroSystem`].
    #[must_use]
    pub fn choice(self) -> ProtectionChoice {
        match self {
            Mechanism::NoMethod => ProtectionChoice::None,
            Mechanism::Iopmp => ProtectionChoice::Iopmp(IopmpConfig::default()),
            Mechanism::Iommu => ProtectionChoice::Iommu(IommuConfig::default()),
            Mechanism::Snpu => ProtectionChoice::Snpu,
            Mechanism::CapCoarse => ProtectionChoice::CapChecker(CheckerConfig::coarse()),
            Mechanism::CapFine => ProtectionChoice::CapChecker(CheckerConfig::fine()),
        }
    }

    /// A small heterogeneous system guarded by this mechanism, with four
    /// generic accelerator FUs available.
    #[must_use]
    pub fn system(self) -> HeteroSystem {
        let mut sys = HeteroSystem::new(SystemConfig {
            mem_size: 4 << 20,
            protection: self.choice(),
            ..SystemConfig::default()
        });
        sys.add_fus("accel", 4);
        sys
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_systems_build() {
        for m in Mechanism::ALL {
            let sys = m.system();
            assert_eq!(sys.protection_entries(), 0, "{m}");
        }
    }

    #[test]
    fn checker_variants_expose_a_checker() {
        assert!(Mechanism::CapFine.system().checker().is_some());
        assert!(Mechanism::CapCoarse.system().checker().is_some());
        assert!(Mechanism::Iommu.system().checker().is_none());
    }
}
