//! Fault-survival scenarios: the recovery harness exercised as a threat.
//!
//! The scripted attacks and the fuzz campaigns probe the *protection*
//! mechanisms; this module probes the *driver* behind them. A compromised
//! or failing accelerator is modeled by arming one fault kind at a time at
//! rate 1.0 — every task is hit — and the recovering driver
//! ([`capchecker::run_campaign`]) must uphold the availability guarantee
//! the robustness work claims:
//!
//! 1. **Nothing is silently lost** — every submitted task ends in exactly
//!    one resolution (completed, retried-completed, denied, quarantined,
//!    or starved).
//! 2. **No fault completes unnoticed** — a task that had a fault injected
//!    never resolves as plain `completed`.
//! 3. **The campaign itself survives** — no panic, no wedged driver, and
//!    the report is byte-deterministic for a fixed seed.
//!
//! [`survival_table`] produces one row per fault kind, the shape the
//! security write-up tabulates next to Table 3.

use capchecker::{
    run_adaptive_campaign, run_campaign, AdaptConfig, AdaptiveCampaignReport, CachedCheckerConfig,
    CampaignConfig, CampaignReport, CheckerConfig, CheckerMode, ProtectionChoice, Resolution,
};
use hetsim::{FaultKind, FaultSpec};
use std::collections::BTreeMap;

/// The driver's observed behaviour under one fault kind armed at rate 1.0.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SurvivalRow {
    /// The fault kind the campaign armed.
    pub kind: FaultKind,
    /// Tasks that actually had the fault injected (post-degrade
    /// cache-corrupt draws have no target and are dropped).
    pub injected: u64,
    /// Resolution counts by label, in stable order.
    pub resolutions: BTreeMap<&'static str, u64>,
    /// Faulted tasks that resolved as plain `completed` — the driver
    /// noticed nothing. Must be zero for a sound recovery path.
    pub unnoticed: u64,
}

impl SurvivalRow {
    /// Whether the driver survived this kind: every task resolved and no
    /// injected fault slipped through as a clean completion.
    #[must_use]
    pub fn survived(&self, tasks: u64) -> bool {
        self.unnoticed == 0 && self.resolutions.values().sum::<u64>() == tasks
    }
}

/// Runs one single-kind campaign and distills the row.
///
/// # Panics
///
/// Panics if the campaign itself fails to run — for the survival table
/// that *is* the finding, so it surfaces loudly rather than as a row.
#[must_use]
pub fn survival_row(kind: FaultKind, tasks: u32, seed: u64) -> SurvivalRow {
    let mut spec = FaultSpec::none();
    spec.set(kind, 1.0);
    let config = CampaignConfig {
        tasks,
        seed,
        spec,
        ..CampaignConfig::default()
    };
    let report = run_campaign(&config).expect("campaign must not wedge the driver");
    let injected = report
        .records
        .iter()
        .filter(|r| r.injected.is_some())
        .count() as u64;
    let unnoticed = report
        .records
        .iter()
        .filter(|r| r.injected.is_some() && r.resolution == Resolution::Completed)
        .count() as u64;
    SurvivalRow {
        kind,
        injected,
        resolutions: report.resolution_counts(),
        unnoticed,
    }
}

/// One survival row per fault kind, in [`FaultKind::ALL`] order.
#[must_use]
pub fn survival_table(tasks: u32, seed: u64) -> Vec<SurvivalRow> {
    survival_table_threads(tasks, seed, 1)
}

/// [`survival_table`] with its per-kind campaigns fanned out over a
/// worker pool — each campaign owns its whole system, so any thread count
/// yields the identical table.
#[must_use]
pub fn survival_table_threads(tasks: u32, seed: u64, threads: usize) -> Vec<SurvivalRow> {
    perf::parallel_map(threads, FaultKind::ALL.len(), |i| {
        survival_row(FaultKind::ALL[i], tasks, seed)
    })
    .unwrap_or_else(|p| p.resume())
}

/// One fixed protection configuration raced in the adaptive-vs-static
/// comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticArm {
    /// Which configuration this arm held for the whole campaign.
    pub label: &'static str,
    /// Tasks that ended in a clean completion (first try or retried).
    pub completed: u64,
}

/// The adaptive controller raced against every static protection
/// configuration on one seeded fault campaign. The survival metric is
/// completed tasks: a static configuration quarantines a faulting engine
/// forever and starves the rest of the queue, while the controller's
/// probationary release wins those tasks back.
#[derive(Clone, Debug)]
pub struct AdaptiveSurvival {
    /// The armed fault spec.
    pub spec: FaultSpec,
    /// Submitted tasks per arm.
    pub tasks: u32,
    /// The shared campaign seed (every arm sees the same fault draws).
    pub seed: u64,
    /// Every static arm, in declaration order.
    pub static_arms: Vec<StaticArm>,
    /// The adaptive arm's full report, decision trace included.
    pub adaptive: AdaptiveCampaignReport,
}

impl AdaptiveSurvival {
    /// Completions of the best static configuration.
    ///
    /// # Panics
    ///
    /// Panics if there are no static arms (the constructor always adds
    /// three).
    #[must_use]
    pub fn best_static(&self) -> u64 {
        self.static_arms
            .iter()
            .map(|a| a.completed)
            .max()
            .expect("comparison has static arms")
    }

    /// Completions under the adaptive controller.
    #[must_use]
    pub fn adaptive_completed(&self) -> u64 {
        self.adaptive.completed_tasks()
    }

    /// The availability claim: the controller never does worse than the
    /// best statically chosen configuration.
    #[must_use]
    pub fn adaptive_wins(&self) -> bool {
        self.adaptive_completed() >= self.best_static()
    }
}

fn completed_of(report: &CampaignReport) -> u64 {
    report
        .records
        .iter()
        .filter(|r| {
            matches!(
                r.resolution,
                Resolution::Completed | Resolution::RetriedCompleted
            )
        })
        .count() as u64
}

/// Runs one seeded campaign under three static protection configurations
/// and once under the adaptive controller, and tabulates completions.
///
/// # Panics
///
/// Panics if any campaign wedges the driver — as with
/// [`survival_row`], that *is* the finding.
#[must_use]
pub fn adaptive_vs_static(spec: &FaultSpec, tasks: u32, seed: u64) -> AdaptiveSurvival {
    let arms = [
        (
            "cached-fine",
            ProtectionChoice::CachedCapChecker(CachedCheckerConfig::default()),
        ),
        (
            "cached-coarse",
            ProtectionChoice::CachedCapChecker(
                CachedCheckerConfig::default().with_mode(CheckerMode::Coarse),
            ),
        ),
        (
            "uncached-fine",
            ProtectionChoice::CapChecker(CheckerConfig::fine()),
        ),
    ];
    let static_arms = arms
        .into_iter()
        .map(|(label, protection)| {
            let config = CampaignConfig {
                tasks,
                seed,
                spec: spec.clone(),
                protection,
                ..CampaignConfig::default()
            };
            let report = run_campaign(&config).expect("campaign must not wedge the driver");
            StaticArm {
                label,
                completed: completed_of(&report),
            }
        })
        .collect();
    let config = CampaignConfig {
        tasks,
        seed,
        spec: spec.clone(),
        ..CampaignConfig::default()
    };
    let adaptive = run_adaptive_campaign(&config, &AdaptConfig::default())
        .expect("campaign must not wedge the driver");
    AdaptiveSurvival {
        spec: spec.clone(),
        tasks,
        seed,
        static_arms,
        adaptive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fault_kind_is_survived() {
        let tasks = 12;
        for row in survival_table(tasks, 0x5EED) {
            assert!(
                row.survived(u64::from(tasks)),
                "{:?}: unnoticed={} resolutions={:?}",
                row.kind,
                row.unnoticed,
                row.resolutions
            );
            assert!(
                row.injected > 0,
                "{:?} never injected at rate 1.0",
                row.kind
            );
        }
    }

    #[test]
    fn hang_storms_quarantine_but_never_lose_tasks() {
        let row = survival_row(FaultKind::EngineHang, 16, 1);
        let quarantined = row.resolutions.get("quarantined").copied().unwrap_or(0);
        assert!(quarantined > 0, "a hang storm must quarantine engines");
        assert!(row.survived(16));
    }

    #[test]
    fn adaptive_beats_every_static_arm_on_a_hang_storm() {
        // At a 40% hang rate a static configuration quarantines all four
        // engines and starves the queue tail; the controller's
        // probationary releases win tasks back.
        let mut spec = FaultSpec::none();
        spec.set(FaultKind::EngineHang, 0.4);
        let cmp = adaptive_vs_static(&spec, 32, 0xC0DE);
        assert!(
            cmp.adaptive_completed() > cmp.best_static(),
            "adaptive {} vs static arms {:?}",
            cmp.adaptive_completed(),
            cmp.static_arms
        );
        // The decision trace explains the wins: at least one probationary
        // release fired, and every decision carries its epoch, rule, and
        // raw inputs.
        assert!(cmp.adaptive.released_fus > 0);
        assert!(!cmp.adaptive.decisions.is_empty());
        for d in &cmp.adaptive.decisions {
            assert!(d.epoch < cmp.adaptive.epochs, "{d:?}");
            assert!(!d.rule.label().is_empty());
        }
    }

    #[test]
    fn adaptive_never_loses_to_static_across_kinds() {
        for kind in [
            FaultKind::TagFlip,
            FaultKind::CacheCorrupt,
            FaultKind::EngineHang,
        ] {
            let mut spec = FaultSpec::none();
            spec.set(kind, 0.5);
            let cmp = adaptive_vs_static(&spec, 24, 7);
            assert!(
                cmp.adaptive_wins(),
                "{kind:?}: adaptive {} < best static {} ({:?})",
                cmp.adaptive_completed(),
                cmp.best_static(),
                cmp.static_arms
            );
        }
    }

    #[test]
    fn adaptive_comparison_is_deterministic() {
        let mut spec = FaultSpec::none();
        spec.set(FaultKind::EngineHang, 0.4);
        let a = adaptive_vs_static(&spec, 16, 3);
        let b = adaptive_vs_static(&spec, 16, 3);
        assert_eq!(a.static_arms, b.static_arms);
        assert_eq!(a.adaptive.to_json(), b.adaptive.to_json());
    }

    #[test]
    fn survival_rows_are_deterministic() {
        assert_eq!(
            survival_row(FaultKind::RogueDma, 10, 42),
            survival_row(FaultKind::RogueDma, 10, 42)
        );
    }
}
