//! Fault-survival scenarios: the recovery harness exercised as a threat.
//!
//! The scripted attacks and the fuzz campaigns probe the *protection*
//! mechanisms; this module probes the *driver* behind them. A compromised
//! or failing accelerator is modeled by arming one fault kind at a time at
//! rate 1.0 — every task is hit — and the recovering driver
//! ([`capchecker::run_campaign`]) must uphold the availability guarantee
//! the robustness work claims:
//!
//! 1. **Nothing is silently lost** — every submitted task ends in exactly
//!    one resolution (completed, retried-completed, denied, quarantined,
//!    or starved).
//! 2. **No fault completes unnoticed** — a task that had a fault injected
//!    never resolves as plain `completed`.
//! 3. **The campaign itself survives** — no panic, no wedged driver, and
//!    the report is byte-deterministic for a fixed seed.
//!
//! [`survival_table`] produces one row per fault kind, the shape the
//! security write-up tabulates next to Table 3.

use capchecker::{run_campaign, CampaignConfig, Resolution};
use hetsim::{FaultKind, FaultSpec};
use std::collections::BTreeMap;

/// The driver's observed behaviour under one fault kind armed at rate 1.0.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SurvivalRow {
    /// The fault kind the campaign armed.
    pub kind: FaultKind,
    /// Tasks that actually had the fault injected (post-degrade
    /// cache-corrupt draws have no target and are dropped).
    pub injected: u64,
    /// Resolution counts by label, in stable order.
    pub resolutions: BTreeMap<&'static str, u64>,
    /// Faulted tasks that resolved as plain `completed` — the driver
    /// noticed nothing. Must be zero for a sound recovery path.
    pub unnoticed: u64,
}

impl SurvivalRow {
    /// Whether the driver survived this kind: every task resolved and no
    /// injected fault slipped through as a clean completion.
    #[must_use]
    pub fn survived(&self, tasks: u64) -> bool {
        self.unnoticed == 0 && self.resolutions.values().sum::<u64>() == tasks
    }
}

/// Runs one single-kind campaign and distills the row.
///
/// # Panics
///
/// Panics if the campaign itself fails to run — for the survival table
/// that *is* the finding, so it surfaces loudly rather than as a row.
#[must_use]
pub fn survival_row(kind: FaultKind, tasks: u32, seed: u64) -> SurvivalRow {
    let mut spec = FaultSpec::none();
    spec.set(kind, 1.0);
    let config = CampaignConfig {
        tasks,
        seed,
        spec,
        ..CampaignConfig::default()
    };
    let report = run_campaign(&config).expect("campaign must not wedge the driver");
    let injected = report
        .records
        .iter()
        .filter(|r| r.injected.is_some())
        .count() as u64;
    let unnoticed = report
        .records
        .iter()
        .filter(|r| r.injected.is_some() && r.resolution == Resolution::Completed)
        .count() as u64;
    SurvivalRow {
        kind,
        injected,
        resolutions: report.resolution_counts(),
        unnoticed,
    }
}

/// One survival row per fault kind, in [`FaultKind::ALL`] order.
#[must_use]
pub fn survival_table(tasks: u32, seed: u64) -> Vec<SurvivalRow> {
    survival_table_threads(tasks, seed, 1)
}

/// [`survival_table`] with its per-kind campaigns fanned out over a
/// worker pool — each campaign owns its whole system, so any thread count
/// yields the identical table.
#[must_use]
pub fn survival_table_threads(tasks: u32, seed: u64, threads: usize) -> Vec<SurvivalRow> {
    perf::parallel_map(threads, FaultKind::ALL.len(), |i| {
        survival_row(FaultKind::ALL[i], tasks, seed)
    })
    .unwrap_or_else(|p| p.resume())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fault_kind_is_survived() {
        let tasks = 12;
        for row in survival_table(tasks, 0x5EED) {
            assert!(
                row.survived(u64::from(tasks)),
                "{:?}: unnoticed={} resolutions={:?}",
                row.kind,
                row.unnoticed,
                row.resolutions
            );
            assert!(
                row.injected > 0,
                "{:?} never injected at rate 1.0",
                row.kind
            );
        }
    }

    #[test]
    fn hang_storms_quarantine_but_never_lose_tasks() {
        let row = survival_row(FaultKind::EngineHang, 16, 1);
        let quarantined = row.resolutions.get("quarantined").copied().unwrap_or(0);
        assert!(quarantined > 0, "a hang storm must quarantine engines");
        assert!(row.survived(16));
    }

    #[test]
    fn survival_rows_are_deterministic() {
        assert_eq!(
            survival_row(FaultKind::RogueDma, 10, 42),
            survival_row(FaultKind::RogueDma, 10, 42)
        );
    }
}
