//! The capability provenance tree of the paper's Figure 4, grown live:
//! the OS derives application compartments, applications derive
//! accelerator tasks, and the driver derives the buffer capabilities it
//! imports into the CapChecker — every edge monotonic, audited at the end.
//!
//! Run with: `cargo run --release --example capability_tree`

use cheri_hetero::prelude::*;

fn indent(depth: usize) -> String {
    "  ".repeat(depth)
}

fn print_subtree(tree: &CapabilityTree, node: cheri_hetero::cheri::NodeId, depth: usize) {
    let cap = tree.capability(node);
    println!(
        "{}{} [{}] {:#x}..{:#x} {}",
        indent(depth),
        tree.label(node),
        tree.kind(node),
        cap.base(),
        cap.top(),
        cap.perms()
    );
    for child in tree.children(node) {
        print_subtree(tree, *child, depth + 1);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = HeteroSystem::new(SystemConfig::default());
    sys.add_fus("fft_strided", 2);

    // Two independent applications, each instantiating an accelerator
    // task; the driver allocates the buffers and derives the green edges.
    let bench = Benchmark::FftStrided;
    let video = sys.allocate_task(
        &TaskRequest::accel("video-app/fft", bench.name())
            .rw_buffers(bench.buffers().iter().map(|b| b.size)),
    )?;
    let radar = sys.allocate_task(
        &TaskRequest::accel("radar-app/fft", bench.name())
            .rw_buffers(bench.buffers().iter().map(|b| b.size)),
    )?;

    print_subtree(sys.tree(), sys.tree().root(), 0);

    // The invariant the whole paper rests on:
    assert!(sys.tree().audit().is_none(), "every edge is monotonic");
    println!("\ntree audit passed: every capability is dominated by its parent");

    // Revocation kills subtrees (deallocation evicts and revokes).
    sys.deallocate_task(video)?;
    println!(
        "after deallocating the video task: {} live nodes",
        sys.tree().live_count()
    );
    sys.deallocate_task(radar)?;
    println!(
        "after deallocating the radar task: {} live nodes",
        sys.tree().live_count()
    );
    Ok(())
}
