//! Fine vs Coarse provenance (Figure 5), demonstrated with one attack.
//!
//! A task holds two buffers and deliberately misuses buffer 0's interface
//! to reach buffer 1:
//!
//! * **Fine** — each object has its own hardware port, so the request
//!   carries true provenance and the CapChecker blocks the cross-object
//!   access: the principle of intentional use, in hardware.
//! * **Coarse** — the accelerator has one opaque interface; object IDs
//!   ride in the top 8 address bits, which an attacker computing its own
//!   addresses can forge. The same access passes — protection degrades to
//!   task granularity, exactly Table 3's worst case. Cross-*task* forging
//!   still fails, because the task ID comes from the interconnect source.
//!
//! Run with: `cargo run --release --example coarse_vs_fine`

use cheri_hetero::prelude::*;

fn attack(mode_label: &str, config: CheckerConfig) -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = HeteroSystem::new(SystemConfig {
        protection: ProtectionChoice::CapChecker(config),
        ..SystemConfig::default()
    });
    sys.add_fus("accel", 2);

    let me = sys.allocate_task(&TaskRequest::accel("attacker", "accel").rw_buffers([64, 64]))?;
    let victim = sys.allocate_task(&TaskRequest::accel("victim", "accel").rw_buffers([64]))?;
    sys.write_buffer(me, 1, 0, &[0x11; 64])?;
    sys.write_buffer(victim, 0, 0, &[0x22; 64])?;

    // Physical facts the attacker knows or guesses.
    let own_b1 = sys.cpu_layout(me)?.buffers[1].base;
    let victim_b0 = sys.cpu_layout(victim)?.buffers[0].base;
    let visible_b0 = sys.accel_layout(me)?.buffers[0].base;
    let coarse = sys.checker().expect("checker").mode() == CheckerMode::Coarse;
    let cfg = *sys.checker().expect("checker").config();

    // Craft bus addresses through buffer 0's interface.
    let forge = |obj: u16, phys: u64| -> u64 {
        let bus = if coarse {
            cfg.coarse_tag_address(obj, phys)
        } else {
            phys
        };
        bus.wrapping_sub(visible_b0)
    };
    let intra = forge(1, own_b1); // own buffer 1, via buffer 0's interface
    let cross = forge(0, victim_b0); // the other task's buffer

    let mut intra_ok = false;
    let mut cross_ok = false;
    sys.run_accel_task(me, |eng| {
        intra_ok = eng.load(0, intra, 8).is_ok();
        cross_ok = eng.load(0, cross, 8).is_ok();
        Ok(())
    })?;

    println!(
        "{mode_label:>7}: intra-task cross-object read: {}",
        if intra_ok {
            "PASSED (task granularity)"
        } else {
            "blocked (object granularity)"
        }
    );
    println!(
        "{mode_label:>7}: cross-task read:              {}",
        if cross_ok { "PASSED (!!)" } else { "blocked" }
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("The same attack against the two CapChecker implementations:\n");
    attack("Fine", CheckerConfig::fine())?;
    println!();
    attack("Coarse", CheckerConfig::coarse())?;
    println!();
    println!("Fine's per-object ports are unforgeable hardware provenance;");
    println!("Coarse's address bits are attacker-computable, so its guarantee");
    println!("drops to compartmentalization *between tasks* (§5.2.3).");
    Ok(())
}
