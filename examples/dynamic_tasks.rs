//! Lifting threat-model assumption 2 (the paper's first future-work
//! direction): a task whose buffer needs grow *while it runs*. The
//! accelerator still cannot allocate memory itself — it asks, and the
//! trusted driver allocates, derives a fresh capability, imports it into
//! the CapChecker, and loads a new base pointer between kernel phases.
//!
//! Run with: `cargo run --release --example dynamic_tasks`

use cheri_hetero::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = HeteroSystem::new(SystemConfig::default());
    sys.add_fus("stream", 1);

    // Phase 0: the task starts with a single small input buffer.
    let task = sys.allocate_task(&TaskRequest::accel("stream", "stream").rw_buffers([256]))?;
    sys.write_buffer(task, 0, 0, &(0..=255u8).collect::<Vec<_>>())?;
    println!(
        "phase 0: {} buffer(s), {} table entries",
        1,
        sys.protection_entries()
    );

    // Phase 1: compute a histogram — but there is nowhere to put it yet.
    // Any attempt to write beyond the input is refused:
    let outcome = sys.run_accel_task(task, |eng| {
        eng.store_u32(0, 64, 0xdead)?; // offset 256: out of bounds
        Ok(())
    })?;
    println!(
        "write past the only buffer: denied = {}",
        !outcome.completed()
    );

    // The driver grows the task: a new output buffer, new capability,
    // new table entry, new base pointer — while the task stays allocated.
    let out_obj = sys.allocate_buffer(task, BufferSpec::rw(1024))?;
    println!(
        "phase 2: buffer {out_obj} allocated live; {} table entries; setup now {} cycles",
        sys.protection_entries(),
        sys.setup_cycles(task)?
    );

    // Phase 2: the histogram lands in the new buffer, fully checked.
    let outcome = sys.run_accel_task(task, |eng| {
        let mut hist = [0u32; 4];
        for i in 0..256 {
            let b = eng.load_u8(0, i)?;
            hist[(b / 64) as usize] += 1;
            eng.compute(2);
        }
        for (k, h) in hist.iter().enumerate() {
            eng.store_u32(out_obj, k as u64, *h)?;
        }
        Ok(())
    })?;
    assert!(outcome.completed());
    let mut word = [0u8; 4];
    sys.read_buffer(task, out_obj, 0, &mut word)?;
    println!("phase 2 completed; hist[0] = {}", u32::from_le_bytes(word));

    // The grown capability is part of the provenance tree and dies with
    // the task.
    assert!(sys.tree().audit().is_none());
    let report = sys.deallocate_task(task)?;
    println!("deallocated; entries in use: {}", sys.protection_entries());
    // The phase-1 denial was latched and reported, as it should be:
    println!(
        "report carries the phase-1 exception: {}",
        report.exception.is_some()
    );
    Ok(())
}
