//! The motivating attack of the paper's Figure 2: a malicious
//! *eavesdropper* accelerator task tries to steal a concurrent video
//! decoder's confidential frame and to forge a capability by overwriting
//! one in memory — against every protection mechanism in the paper.
//!
//! Run with: `cargo run --release --example eavesdropper`

use cheri_hetero::threatbench::{eavesdropper, Mechanism};

fn main() {
    println!("Figure 2: the eavesdropper attack vs every protection mechanism\n");
    println!(
        "{:<12} {:>14} {:>18} {:>14} {:>12}",
        "mechanism", "frame stolen?", "capability forged?", "exception?", "denial"
    );
    for mech in Mechanism::ALL {
        let out = eavesdropper::run(mech);
        println!(
            "{:<12} {:>14} {:>18} {:>14} {:>12}",
            mech.label(),
            if out.stolen.is_empty() {
                "no"
            } else {
                "YES (leak!)"
            },
            if out.capability_forged {
                "YES (broken!)"
            } else {
                "no"
            },
            if out.exception_visible {
                "reported"
            } else {
                "-"
            },
            out.denial.map_or("-".to_owned(), |d| d.reason.to_string()),
        );
    }
    println!();
    println!("The unprotected system leaks the frame; every mechanism that");
    println!("interposes the DMA path blocks the read, and no mechanism lets");
    println!("a DMA write produce a *tagged* capability — the CapChecker adds");
    println!("the exception trace the CPU uses to identify the offender.");
}
