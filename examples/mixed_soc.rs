//! A Figure-9-style SoC: eight different accelerators behind one
//! CapChecker, all tasks live at once, sharing the interconnect.
//!
//! Run with: `cargo run --release --example mixed_soc`

use cheri_hetero::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mix = [
        Benchmark::Aes,
        Benchmark::FftTranspose,
        Benchmark::SortRadix,
        Benchmark::SpmvCrs,
        Benchmark::Kmp,
        Benchmark::Stencil3d,
        Benchmark::MdKnn,
        Benchmark::Viterbi,
    ];

    let mut sys = HeteroSystem::new(SystemConfig::default());
    for bench in &mix {
        sys.add_fus(bench.name(), 1);
    }

    // Allocate everything up front: the capability table holds all of it.
    let mut tasks = Vec::new();
    for (i, bench) in mix.iter().enumerate() {
        let id = sys.allocate_task(
            &TaskRequest::accel(format!("{bench}#{i}"), bench.name())
                .rw_buffers(bench.buffers().iter().map(|b| b.size)),
        )?;
        for (obj, image) in bench.init(0x900D + i as u64).iter().enumerate() {
            sys.write_buffer(id, obj, 0, image)?;
        }
        tasks.push((id, *bench));
    }
    println!(
        "capability table: {} entries in use (of {})",
        sys.protection_entries(),
        sys.checker()
            .expect("CapChecker present")
            .table()
            .capacity()
    );

    for (id, bench) in &tasks {
        let outcome = sys.run_accel_task(*id, |eng| bench.kernel(eng))?;
        let trace = sys.trace(*id)?.expect("ran");
        println!(
            "{:<14} completed={} mem_bytes={:>8} compute_units={:>9}",
            bench.name(),
            outcome.completed(),
            trace.mem_bytes(),
            trace.compute_units()
        );
    }

    let stats = sys.checker().expect("CapChecker present").stats();
    println!(
        "\nCapChecker: {} requests granted, {} denied, {} capabilities installed",
        stats.granted, stats.denied, stats.installs
    );

    for (id, _) in tasks {
        let report = sys.deallocate_task(id)?;
        assert!(report.exception.is_none());
    }
    println!(
        "all tasks deallocated; table entries in use: {}",
        sys.protection_entries()
    );
    Ok(())
}
