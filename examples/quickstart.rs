//! Quickstart: build the paper's system, run a real accelerator workload
//! through the CapChecker, then watch it stop a buggy task.
//!
//! Run with: `cargo run --release --example quickstart`

use cheri_hetero::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's prototype: a CHERI CPU and a Fine-mode CapChecker with
    // 256 capability-table entries guarding all accelerator DMA.
    let mut sys = HeteroSystem::new(SystemConfig::default());
    sys.add_fus("gemm_ncubed", 2);

    // --- A well-behaved task: 64x64 matrix multiply on the accelerator.
    let bench = Benchmark::GemmNcubed;
    let task = sys.allocate_task(
        &TaskRequest::accel("gemm", bench.name())
            .rw_buffers(bench.buffers().iter().map(|b| b.size)),
    )?;
    for (obj, image) in bench.init(42).iter().enumerate() {
        sys.write_buffer(task, obj, 0, image)?;
    }
    println!(
        "driver setup took {} cycles (capability imports over MMIO)",
        sys.setup_cycles(task)?
    );

    let outcome = sys.run_accel_task(task, |eng| bench.kernel(eng))?;
    println!("gemm completed: {}", outcome.completed());

    // Read a result element back on the CPU (capability-checked).
    let mut word = [0u8; 4];
    sys.read_buffer(task, 2, 0, &mut word)?;
    println!("C[0][0] = {}", f32::from_bits(u32::from_le_bytes(word)));
    let report = sys.deallocate_task(task)?;
    println!(
        "deallocated {:?}: exception = {:?}\n",
        report.name, report.exception
    );

    // --- A buggy task: same accelerator class, but its loop bound runs
    // one past the end of its buffer (the classic CWE-787).
    let buggy = sys.allocate_task(&TaskRequest::accel("buggy", "gemm_ncubed").rw_buffers([256]))?;
    let outcome = sys.run_accel_task(buggy, |eng| {
        for i in 0..=64 {
            // 64 u32s fit; index 64 does not.
            eng.store_u32(0, i, i as u32)?;
        }
        Ok(())
    })?;
    println!("buggy task completed: {}", outcome.completed());
    if let Some(denial) = outcome.denial {
        println!("CapChecker raised: {denial}");
    }
    let checker = sys.checker().expect("this system has a CapChecker");
    println!("global exception flag: {}", checker.exception_flag());

    let report = sys.deallocate_task(buggy)?;
    println!(
        "driver report: offending objects {:?}, buffers scrubbed: {}",
        report.offending_objects, report.scrubbed
    );
    Ok(())
}
