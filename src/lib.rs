//! # cheri-hetero — adaptive CHERI compartmentalization for heterogeneous accelerators
//!
//! A full-system reproduction of *"Adaptive CHERI Compartmentalization
//! for Heterogeneous Accelerators"* (ISCA 2025) as a Rust architectural
//! simulator. The paper's FPGA prototype — a CHERI RISC-V CPU, AXI
//! interconnect, tagged memory, HLS-generated MachSuite accelerators, and
//! the **CapChecker** guarding accelerator DMA — is rebuilt here so that
//! every table and figure of the evaluation can be regenerated in
//! software.
//!
//! This crate is a facade: it re-exports the subsystem crates and offers a
//! [`prelude`] for the common types.
//!
//! | Crate | Role |
//! |---|---|
//! | [`cheri`] | Capability model: monotonic derivation, 128-bit compressed format, provenance tree |
//! | [`hetsim`] | Simulation substrate: tagged memory, bus, engines, timing models |
//! | [`machsuite`] | The 19 MachSuite benchmarks with golden references and HLS profiles |
//! | [`ioprotect`] | Baselines: IOPMP, IOMMU, sNPU-style checker |
//! | [`capchecker`] | **The contribution**: the CapChecker, driver, and system assembly |
//! | [`fpgamodel`] | Analytical area/power model calibrated to the paper |
//! | [`threatbench`] | Executable CWE attacks and the Table 3 matrix |
//!
//! # Quick start
//!
//! ```
//! use cheri_hetero::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sys = HeteroSystem::new(SystemConfig::default());
//! sys.add_fus("gemm_ncubed", 1);
//!
//! let bench = Benchmark::GemmNcubed;
//! let task = sys.allocate_task(
//!     &TaskRequest::accel("gemm", bench.name())
//!         .rw_buffers(bench.buffers().iter().map(|b| b.size)),
//! )?;
//! for (obj, image) in bench.init(42).iter().enumerate() {
//!     sys.write_buffer(task, obj, 0, image)?;
//! }
//! let outcome = sys.run_accel_task(task, |eng| bench.kernel(eng))?;
//! assert!(outcome.completed());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use capchecker;
pub use cheri;
pub use fpgamodel;
pub use hetsim;
pub use ioprotect;
pub use machsuite;
pub use threatbench;

/// The types most programs need.
pub mod prelude {
    pub use capchecker::{
        BufferSpec, CapChecker, CheckerConfig, CheckerMode, HeteroSystem, ProtectionChoice,
        SystemConfig, SystemVariant, TaskOutcome, TaskReport, TaskRequest,
    };
    pub use cheri::{
        CapFault, Capability, CapabilityTree, CompressedCapability, ObjectKind, Perms,
    };
    pub use hetsim::{Access, AccessKind, Denial, Engine, ExecFault, TaggedMemory, TaskId};
    pub use ioprotect::{Granularity, IoProtection};
    pub use machsuite::Benchmark;
}
