//! Reproduction-shape calibration: the figure-level claims of the paper,
//! asserted against the simulator. These are the tests that pin the
//! *shape* of the evaluation (who wins, by roughly what factor, where the
//! crossovers fall) — see EXPERIMENTS.md.

use capcheri_bench::{fig10, fig11, fig12, fig7, fig8};
use machsuite::Benchmark;

/// Figure 7: the speedup bands.
#[test]
fn figure7_speedup_bands() {
    let memory_bound = [
        Benchmark::MdKnn,
        Benchmark::Stencil2d,
        Benchmark::BfsBulk,
        Benchmark::BfsQueue,
    ];
    for row in fig7::rows() {
        let s = row.speedup;
        if memory_bound.contains(&row.bench) {
            assert!(s < 1.0, "{}: expected below 1x, got {s:.2}x", row.bench);
        } else if matches!(row.bench, Benchmark::Backprop | Benchmark::Viterbi) {
            assert!(s > 2000.0, "{}: expected >2000x, got {s:.0}x", row.bench);
        } else {
            assert!(s > 1.0, "{}: expected above 1x, got {s:.2}x", row.bench);
        }
    }
}

/// Figure 8: overhead within 5% for most benchmarks; md_knn is the
/// percentage outlier because its absolute latency is tiny; the average
/// stays in the low single digits (the paper reports 1.4%).
#[test]
fn figure8_overhead_bands() {
    let rows = fig8::rows();
    let within_5 = rows.iter().filter(|r| r.perf_overhead < 0.05).count();
    assert!(
        within_5 >= rows.len() - 2,
        "only {within_5}/{} under 5%",
        rows.len()
    );

    let knn = rows
        .iter()
        .find(|r| r.bench == Benchmark::MdKnn)
        .expect("md_knn present");
    let max = rows.iter().map(|r| r.perf_overhead).fold(0.0f64, f64::max);
    assert!(
        (knn.perf_overhead - max).abs() < 1e-9,
        "md_knn must be the largest overhead ({} vs max {})",
        knn.perf_overhead,
        max
    );
    assert!(knn.checked_cycles < 20_000, "md_knn stays small-latency");

    let (perf, area, _) = fig8::geomeans(&rows);
    assert!(
        perf < 0.04,
        "mean perf overhead {perf} should be low single digits"
    );
    assert!(
        (0.08..0.25).contains(&area),
        "area overhead ~15%, got {area}"
    );
}

/// Figure 10: the CapChecker costs less than CPU-side CHERI for most
/// benchmarks, and gemm_blocked flips sign on the CHERI CPU.
#[test]
fn figure10_config_relationships() {
    use capchecker::SystemVariant;
    let sample = [
        Benchmark::Aes,
        Benchmark::GemmBlocked,
        Benchmark::Kmp,
        Benchmark::SortMerge,
        Benchmark::Viterbi,
        Benchmark::FftStrided,
        Benchmark::Stencil3d,
    ];
    let mut checker_cheaper = 0;
    for bench in sample {
        let row = fig10::row(bench);
        // Offloading never loses determinism: all five variants ran.
        assert!(row.cycles.iter().all(|c| *c > 0), "{bench}");
        if row.checker_overhead() <= row.cheri_cpu_overhead() {
            checker_cheaper += 1;
        }
        if bench == Benchmark::GemmBlocked {
            assert!(
                row.of(SystemVariant::CheriCpu) < row.of(SystemVariant::Cpu),
                "gemm_blocked: the capability-copy instruction should win"
            );
        }
    }
    assert!(
        checker_cheaper * 2 > sample.len(),
        "CapChecker should cost less than CPU CHERI for most: {checker_cheaper}/{}",
        sample.len()
    );
}

/// Figure 11: throughput grows with parallelism until the bus saturates;
/// the checker overhead does not grow with parallelism.
#[test]
fn figure11_parallelism_trends() {
    let sweep = fig11::rows();
    assert!(sweep[2].throughput_speedup > sweep[0].throughput_speedup * 1.4);
    let last = sweep.last().expect("sweep nonempty");
    assert!(
        last.bus_utilization > 0.8,
        "bus should saturate, got {}",
        last.bus_utilization
    );
    assert!(last.overhead <= sweep[0].overhead + 0.02);
    assert!(last.overhead < 0.05);
}

/// Figure 12: IOMMU entries scale with bytes, CapChecker entries with
/// buffer count; the data-heavy benchmarks show multi-x gaps.
#[test]
fn figure12_entry_scaling() {
    let mut any_large_gap = false;
    for row in fig12::rows() {
        assert!(row.capchecker_entries <= row.iommu_entries, "{}", row.bench);
        if row.iommu_entries as f64 / row.capchecker_entries as f64 > 3.0 {
            any_large_gap = true;
        }
    }
    assert!(
        any_large_gap,
        "some benchmark must show the multi-x IOMMU blowup"
    );
}
