//! Cross-crate integration: the full driver lifecycle of Figure 6 with
//! real MachSuite kernels on the CapChecker-guarded system.

use cheri_hetero::prelude::*;

fn fine_system(class: &str, fus: usize) -> HeteroSystem {
    let mut sys = HeteroSystem::new(SystemConfig::default());
    sys.add_fus(class, fus);
    sys
}

fn allocate(sys: &mut HeteroSystem, bench: Benchmark, name: &str, seed: u64) -> TaskId {
    let id = sys
        .allocate_task(
            &TaskRequest::accel(name, bench.name())
                .rw_buffers(bench.buffers().iter().map(|b| b.size)),
        )
        .expect("allocation succeeds");
    for (obj, image) in bench.init(seed).iter().enumerate() {
        sys.write_buffer(id, obj, 0, image).expect("init fits");
    }
    id
}

#[test]
fn every_benchmark_runs_protected_and_matches_its_reference() {
    for bench in Benchmark::ALL {
        let mut sys = fine_system(bench.name(), 1);
        let id = allocate(&mut sys, bench, "t", 0xE2E);
        let outcome = sys
            .run_accel_task(id, |eng| bench.kernel(eng))
            .expect("runs");
        assert!(
            outcome.completed(),
            "{bench} was denied: {:?}",
            outcome.denial
        );

        // The protected run must produce exactly the golden bytes.
        let mut golden = bench.init(0xE2E);
        bench.reference(&mut golden);
        for (obj, want) in golden.iter().enumerate() {
            let mut got = vec![0u8; want.len()];
            sys.read_buffer(id, obj, 0, &mut got).expect("readback");
            assert_eq!(
                &got, want,
                "{bench}: buffer {obj} diverged under protection"
            );
        }

        // No exception anywhere, tree still monotonic, table consistent.
        assert!(!sys.checker().expect("checker").exception_flag(), "{bench}");
        assert!(sys.tree().audit().is_none(), "{bench}");
        assert_eq!(sys.protection_entries(), bench.buffers().len(), "{bench}");

        let report = sys.deallocate_task(id).expect("dealloc");
        assert!(report.exception.is_none(), "{bench}");
        assert_eq!(sys.protection_entries(), 0, "{bench}");
    }
}

#[test]
fn eight_instances_of_each_benchmark_fit_the_256_entry_table() {
    // Table 2's point: every benchmark's full 8-instance configuration
    // fits the prototype CapChecker.
    for bench in [Benchmark::Backprop, Benchmark::MdKnn, Benchmark::Nw] {
        let mut sys = fine_system(bench.name(), 8);
        let mut ids = Vec::new();
        for i in 0..8 {
            ids.push(allocate(&mut sys, bench, &format!("i{i}"), i as u64));
        }
        assert_eq!(sys.protection_entries(), 8 * bench.buffers().len());
        assert!(sys.protection_entries() <= 256);
        for id in ids {
            sys.deallocate_task(id).expect("dealloc");
        }
    }
}

#[test]
fn capability_table_exhaustion_stalls_allocation() {
    let mut sys = HeteroSystem::new(SystemConfig {
        protection: ProtectionChoice::CapChecker(CheckerConfig {
            entries: 8,
            ..CheckerConfig::fine()
        }),
        ..SystemConfig::default()
    });
    sys.add_fus("k", 4);
    let a = sys
        .allocate_task(&TaskRequest::accel("a", "k").rw_buffers([64; 5]))
        .unwrap();
    let _b = sys
        .allocate_task(&TaskRequest::accel("b", "k").rw_buffers([64; 3]))
        .unwrap();
    // 8/8 entries used; the next allocation must stall (error here).
    let err = sys
        .allocate_task(&TaskRequest::accel("c", "k").rw_buffers([64]))
        .unwrap_err();
    assert!(matches!(
        err,
        capchecker::DriverError::ProtectionTableFull(_)
    ));
    // Eviction by deallocation unblocks it, as in §5.3 ③.
    sys.deallocate_task(a).unwrap();
    assert!(sys
        .allocate_task(&TaskRequest::accel("c", "k").rw_buffers([64]))
        .is_ok());
}

#[test]
fn denied_task_aborts_cleanly_and_leaves_no_residue() {
    let mut sys = fine_system("gemm_ncubed", 1);
    let bench = Benchmark::GemmNcubed;
    let id = allocate(&mut sys, bench, "victim-of-own-bug", 7);
    let b_base = sys.cpu_layout(id).unwrap().buffers[1].base;

    let outcome = sys
        .run_accel_task(id, |eng| {
            eng.store_u32(0, 0, 1)?;
            eng.load_u32(0, 1 << 20)?; // way out of bounds
            eng.store_u32(0, 1, 2)?; // never reached
            Ok(())
        })
        .expect("kernel executes");
    assert!(!outcome.completed());

    let report = sys.deallocate_task(id).expect("dealloc");
    assert!(report.exception.is_some());
    assert!(report.scrubbed);
    // The freed memory holds no leftovers for the next tenant.
    assert_eq!(sys.memory().read_uint(b_base, 8).unwrap(), 0);

    // And the system is immediately reusable.
    let id2 = allocate(&mut sys, bench, "clean", 8);
    let outcome = sys
        .run_accel_task(id2, |eng| bench.kernel(eng))
        .expect("runs");
    assert!(outcome.completed());
}

#[test]
fn coarse_and_fine_agree_on_benign_results() {
    let bench = Benchmark::SortRadix;
    let mut results = Vec::new();
    for config in [CheckerConfig::fine(), CheckerConfig::coarse()] {
        let mut sys = HeteroSystem::new(SystemConfig {
            protection: ProtectionChoice::CapChecker(config),
            ..SystemConfig::default()
        });
        sys.add_fus(bench.name(), 1);
        let id = allocate(&mut sys, bench, "s", 99);
        let outcome = sys
            .run_accel_task(id, |eng| bench.kernel(eng))
            .expect("runs");
        assert!(outcome.completed(), "{:?}", config.mode);
        let mut data = vec![0u8; 8192];
        sys.read_buffer(id, 0, 0, &mut data).expect("readback");
        results.push(data);
    }
    assert_eq!(
        results[0], results[1],
        "provenance mode must not change results"
    );
}

#[test]
fn cpu_and_accelerator_compute_identical_bytes() {
    let bench = Benchmark::FftStrided;
    let mut accel_sys = fine_system(bench.name(), 1);
    let a = allocate(&mut accel_sys, bench, "a", 5);
    accel_sys
        .run_accel_task(a, |eng| bench.kernel(eng))
        .expect("accel runs");

    let mut cpu_sys = HeteroSystem::new(SystemVariant::CheriCpu.config());
    let c = cpu_sys
        .allocate_task(&TaskRequest::cpu("c").rw_buffers(bench.buffers().iter().map(|b| b.size)))
        .expect("cpu task");
    for (obj, image) in bench.init(5).iter().enumerate() {
        cpu_sys.write_buffer(c, obj, 0, image).expect("init");
    }
    cpu_sys
        .run_cpu_task(c, |eng| bench.kernel(eng))
        .expect("cpu runs");

    for obj in 0..bench.buffers().len() {
        let size = bench.buffers()[obj].size as usize;
        let mut x = vec![0u8; size];
        let mut y = vec![0u8; size];
        accel_sys
            .read_buffer(a, obj, 0, &mut x)
            .expect("read accel");
        cpu_sys.read_buffer(c, obj, 0, &mut y).expect("read cpu");
        assert_eq!(x, y, "{bench}: buffer {obj} differs between targets");
    }
}
