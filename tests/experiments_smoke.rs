//! Smoke tests over every experiment report: each regeneration target
//! produces output containing its key markers (full runs happen in the
//! release binaries; see EXPERIMENTS.md).

use capcheri_bench::{fig12, fig7, fig8, fig9, table1, table2, table3};
use machsuite::Benchmark;

#[test]
fn table_reports_render() {
    let t1 = table1::report();
    assert!(t1.contains("Table 1") && t1.contains("Unforgeability"));

    let t2 = table2::report();
    assert!(t2.contains("Table 2") && t2.contains("backprop") && t2.contains("10432"));

    let t3 = table3::report();
    assert!(t3.contains("Table 3") && t3.contains("OB") && t3.contains("Fine"));
}

#[test]
fn figure_rows_have_sane_units() {
    let r = fig7::row(Benchmark::Aes);
    assert!(r.cpu_cycles > r.accel_cycles, "aes accelerates");

    let o = fig8::row(Benchmark::SortMerge);
    assert!(o.perf_overhead >= 0.0 && o.perf_overhead < 0.2);
    assert!(o.area_overhead > 0.0 && o.area_overhead < 0.5);

    let e = fig12::row(Benchmark::Stencil3d);
    // Two 64 KiB buffers: 16 pages each vs one capability each.
    assert!(e.iommu_entries >= e.capchecker_entries * 5);
}

#[test]
fn one_mixed_system_renders() {
    let row = fig9::row(1);
    assert_eq!(row.mix.len(), fig9::TASKS_PER_SYSTEM);
    assert!(row.checked_cycles >= row.base_cycles);
}
