//! Integration tests for the beyond-the-paper extensions: dynamic buffer
//! growth (future work §8) and the cache-backed CapChecker (§5.2.3).

use cheri_hetero::capchecker::{CachedCheckerConfig, DriverError};
use cheri_hetero::prelude::*;

#[test]
fn dynamic_buffer_growth_full_lifecycle() {
    let mut sys = HeteroSystem::new(SystemConfig::default());
    sys.add_fus("k", 1);
    let task = sys
        .allocate_task(&TaskRequest::accel("k0", "k").rw_buffers([128]))
        .unwrap();
    assert_eq!(sys.protection_entries(), 1);

    // Before growth: object 1 does not exist for this task.
    let outcome = sys
        .run_accel_task(task, |eng| {
            eng.store_u32(0, 100, 1)?; // past 128 bytes
            Ok(())
        })
        .unwrap();
    assert!(!outcome.completed());

    let obj = sys.allocate_buffer(task, BufferSpec::rw(512)).unwrap();
    assert_eq!(obj, 1);
    assert_eq!(sys.protection_entries(), 2);

    // The new buffer is fully usable and checked.
    let outcome = sys
        .run_accel_task(task, |eng| {
            for i in 0..128 {
                eng.store_u32(obj, i, i as u32)?;
            }
            Ok(())
        })
        .unwrap();
    assert!(outcome.completed());
    // …but its bounds are real:
    let outcome = sys
        .run_accel_task(task, |eng| eng.load_u32(obj, 128).map(|_| ()))
        .unwrap();
    assert!(!outcome.completed());

    // The provenance tree stays consistent and everything dies together.
    assert!(sys.tree().audit().is_none());
    sys.deallocate_task(task).unwrap();
    assert_eq!(sys.protection_entries(), 0);
}

#[test]
fn dynamic_growth_respects_permissions() {
    let mut sys = HeteroSystem::new(SystemConfig::default());
    sys.add_fus("k", 1);
    let task = sys
        .allocate_task(&TaskRequest::accel("k0", "k").rw_buffers([64]))
        .unwrap();
    let ro = sys.allocate_buffer(task, BufferSpec::ro(64)).unwrap();
    let outcome = sys
        .run_accel_task(task, |eng| eng.store_u32(ro, 0, 1))
        .unwrap();
    assert!(
        !outcome.completed(),
        "read-only dynamic buffer must refuse writes"
    );
}

#[test]
fn dynamic_growth_fails_cleanly_for_dead_tasks() {
    let mut sys = HeteroSystem::new(SystemConfig::default());
    sys.add_fus("k", 1);
    let task = sys
        .allocate_task(&TaskRequest::accel("k0", "k").rw_buffers([64]))
        .unwrap();
    sys.deallocate_task(task).unwrap();
    assert!(matches!(
        sys.allocate_buffer(task, BufferSpec::rw(64)),
        Err(DriverError::UnknownTask(_))
    ));
}

#[test]
fn cached_checker_system_runs_workloads_with_identical_results() {
    let bench = Benchmark::SortMerge;
    let mut results = Vec::new();
    for protection in [
        ProtectionChoice::CapChecker(CheckerConfig::fine()),
        ProtectionChoice::CachedCapChecker(CachedCheckerConfig::default()),
    ] {
        let mut sys = HeteroSystem::new(SystemConfig {
            protection,
            ..SystemConfig::default()
        });
        sys.add_fus(bench.name(), 1);
        let id = sys
            .allocate_task(
                &TaskRequest::accel("s", bench.name())
                    .rw_buffers(bench.buffers().iter().map(|b| b.size)),
            )
            .unwrap();
        for (obj, image) in bench.init(5).iter().enumerate() {
            sys.write_buffer(id, obj, 0, image).unwrap();
        }
        let outcome = sys.run_accel_task(id, |eng| bench.kernel(eng)).unwrap();
        assert!(outcome.completed());
        let mut data = vec![0u8; 8192];
        sys.read_buffer(id, 0, 0, &mut data).unwrap();
        results.push(data);
    }
    assert_eq!(results[0], results[1], "cached and fixed tables must agree");
}

#[test]
fn cached_checker_never_stalls_on_capacity() {
    // 60 tasks x 5 buffers = 300 capabilities: beyond the fixed table's
    // 256 entries, trivially held by the memory-backed variant.
    let mut sys = HeteroSystem::new(SystemConfig {
        protection: ProtectionChoice::CachedCapChecker(CachedCheckerConfig::default()),
        ..SystemConfig::default()
    });
    sys.add_fus("k", 60);
    let mut tasks = Vec::new();
    for i in 0..60 {
        tasks.push(
            sys.allocate_task(&TaskRequest::accel(format!("t{i}"), "k").rw_buffers([64; 5]))
                .unwrap_or_else(|e| panic!("task {i} stalled: {e}")),
        );
    }
    // Every task's every buffer is reachable.
    for &t in &tasks {
        let out = sys
            .run_accel_task(t, |eng| {
                for obj in 0..5 {
                    eng.store_u32(obj, 0, 7)?;
                }
                Ok(())
            })
            .unwrap();
        assert!(out.completed());
    }
    for t in tasks {
        sys.deallocate_task(t).unwrap();
    }
}

#[test]
fn fixed_table_stalls_where_cached_does_not() {
    // The same 300-capability load against the fixed 256-entry table
    // stalls — the exact contrast the §5.2.3 cache design buys.
    let mut sys = HeteroSystem::new(SystemConfig::default());
    sys.add_fus("k", 60);
    let mut stalled = false;
    for i in 0..60 {
        match sys.allocate_task(&TaskRequest::accel(format!("t{i}"), "k").rw_buffers([64; 5])) {
            Ok(_) => {}
            Err(DriverError::ProtectionTableFull(_)) => {
                stalled = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(
        stalled,
        "256-entry table must run out before 300 capabilities"
    );
}

#[test]
fn revocation_sweep_kills_spilled_capabilities_on_dealloc() {
    use cheri::Capability;
    let mut sys = HeteroSystem::new(SystemConfig::default());
    sys.add_fus("k", 1);
    let task = sys
        .allocate_task(&TaskRequest::accel("k0", "k").rw_buffers([256]))
        .unwrap();
    let base = sys.cpu_layout(task).unwrap().buffers[0].base;

    // The CPU spills a capability to the task's buffer somewhere else in
    // memory (a saved pointer), plus an unrelated one.
    let spill_at = 0x8000;
    let into_buffer = Capability::root().set_bounds(base, 256).unwrap();
    let unrelated = Capability::root().set_bounds(0x4000, 64).unwrap();
    sys.memory_mut()
        .write_capability(spill_at, into_buffer.compress(), true)
        .unwrap();
    sys.memory_mut()
        .write_capability(spill_at + 16, unrelated.compress(), true)
        .unwrap();

    let report = sys.deallocate_task(task).unwrap();
    assert_eq!(
        report.capabilities_revoked, 1,
        "exactly the dangling capability dies"
    );
    assert!(
        !sys.memory().tag(spill_at),
        "the dangling pointer is revoked"
    );
    assert!(
        sys.memory().tag(spill_at + 16),
        "the unrelated capability survives"
    );
}

#[test]
fn revocation_sweep_can_be_disabled() {
    use cheri::Capability;
    let mut sys = HeteroSystem::new(SystemConfig {
        revocation_sweep: false,
        ..SystemConfig::default()
    });
    sys.add_fus("k", 1);
    let task = sys
        .allocate_task(&TaskRequest::accel("k0", "k").rw_buffers([256]))
        .unwrap();
    let base = sys.cpu_layout(task).unwrap().buffers[0].base;
    let cap = Capability::root().set_bounds(base, 256).unwrap();
    sys.memory_mut()
        .write_capability(0x8000, cap.compress(), true)
        .unwrap();
    let report = sys.deallocate_task(task).unwrap();
    assert_eq!(report.capabilities_revoked, 0);
    assert!(
        sys.memory().tag(0x8000),
        "without the sweep, the dangling cap lingers"
    );
}

#[test]
fn guard_regions_turn_contiguous_overflows_into_faults() {
    // §5.2.3's safeguard: without guards, two buffers of one task can end
    // up physically adjacent, so a contiguous overflow in a task-granular
    // mode silently hits the neighbour. Guards put unmapped space between.
    use capchecker::CheckerMode;
    let _ = CheckerMode::Coarse; // the mode this safeguard is aimed at
    let coarse = ProtectionChoice::CapChecker(CheckerConfig::coarse());

    // Without guards: buffers are back-to-back…
    let mut tight = HeteroSystem::new(SystemConfig {
        protection: coarse,
        ..SystemConfig::default()
    });
    tight.add_fus("k", 1);
    let t = tight
        .allocate_task(&TaskRequest::accel("t", "k").rw_buffers([64, 64]))
        .unwrap();
    let l = tight.cpu_layout(t).unwrap();
    assert_eq!(l.buffers[0].end(), l.buffers[1].base, "no guards: adjacent");

    // …with guards, there is a moat no capability covers.
    let mut guarded = HeteroSystem::new(SystemConfig {
        protection: coarse,
        guard_bytes: 256,
        ..SystemConfig::default()
    });
    guarded.add_fus("k", 1);
    let g = guarded
        .allocate_task(&TaskRequest::accel("g", "k").rw_buffers([64, 64]))
        .unwrap();
    let gl = guarded.cpu_layout(g).unwrap();
    assert!(
        gl.buffers[1].base >= gl.buffers[0].end() + 256,
        "guard moat present"
    );

    // A sequential overflow from buffer 0 faults in the moat under any
    // checker mode (the address carries buffer 0's object bits, and the
    // moat is outside buffer 0's capability).
    let outcome = guarded
        .run_accel_task(g, |eng| {
            for i in 0..32 {
                eng.store_u32(0, i, i as u32)?; // i = 16.. overflows
            }
            Ok(())
        })
        .unwrap();
    assert!(!outcome.completed(), "the moat catches the runaway store");
}

#[test]
fn sub_object_capabilities_protect_struct_members() {
    // §6.2: "CHERI on the CPU is able to derive capabilities to
    // sub-objects, e.g. shrunk to individual struct members, and if
    // passed from the CPU the CapChecker can protect those equally well."
    use cheri_hetero::hetsim::{Access, MasterId, ObjectId, TaskId};
    use cheri_hetero::ioprotect::IoProtection;

    let mut checker = CapChecker::new(CheckerConfig::fine());
    // A 256-byte struct at 0x1000; the accelerator is delegated only the
    // 32-byte member at offset 64.
    let whole = Capability::root().set_bounds(0x1000, 256).unwrap();
    let member = whole
        .set_bounds(0x1040, 32)
        .unwrap()
        .and_perms(Perms::RW)
        .unwrap();
    checker.grant(TaskId(1), ObjectId(0), &member).unwrap();

    let inside = Access::read(MasterId(1), TaskId(1), 0x1040, 32).with_object(ObjectId(0));
    assert!(checker.check(&inside).is_ok());
    // The rest of the *same struct* is out of reach.
    let sibling_field = Access::read(MasterId(1), TaskId(1), 0x1000, 8).with_object(ObjectId(0));
    assert!(checker.check(&sibling_field).is_err());
    let tail = Access::read(MasterId(1), TaskId(1), 0x1060, 8).with_object(ObjectId(0));
    assert!(checker.check(&tail).is_err());
}
