//! §6.2's observation, executed: realistic bugs (oversized loop bounds,
//! off-by-one scatters, unsanitized gather indices) in real benchmark
//! kernels run *silently* on an unprotected system and are caught —
//! and traced to the offending pointer — by the CapChecker.

use cheri_hetero::machsuite::kernels::faulty::Fault;
use cheri_hetero::prelude::*;

fn system_with(protection: ProtectionChoice, class: &str) -> HeteroSystem {
    let mut sys = HeteroSystem::new(SystemConfig {
        protection,
        ..SystemConfig::default()
    });
    sys.add_fus(class, 1);
    sys
}

fn run_fault(sys: &mut HeteroSystem, fault: Fault) -> (TaskId, TaskOutcome) {
    let bench = fault.benchmark();
    let id = sys
        .allocate_task(
            &TaskRequest::accel("buggy", bench.name())
                .rw_buffers(bench.buffers().iter().map(|b| b.size)),
        )
        .expect("allocates");
    for (obj, image) in bench.init(0xBAD).iter().enumerate() {
        sys.write_buffer(id, obj, 0, image).expect("init");
    }
    let outcome = sys
        .run_accel_task(id, |eng| fault.kernel(eng))
        .expect("kernel executes");
    (id, outcome)
}

#[test]
fn every_observed_bug_is_invisible_without_protection() {
    for fault in Fault::ALL {
        let mut sys = system_with(ProtectionChoice::None, fault.benchmark().name());
        let (_, outcome) = run_fault(&mut sys, fault);
        assert!(
            outcome.completed(),
            "{fault:?}: the unprotected system should corrupt silently"
        );
    }
}

#[test]
fn capchecker_catches_every_observed_bug_and_traces_the_pointer() {
    for fault in Fault::ALL {
        let mut sys = system_with(
            ProtectionChoice::CapChecker(CheckerConfig::fine()),
            fault.benchmark().name(),
        );
        let (id, outcome) = run_fault(&mut sys, fault);
        assert!(
            !outcome.completed(),
            "{fault:?}: the CapChecker must refuse"
        );
        let denial = outcome.denial.expect("a denial was latched");
        assert!(
            matches!(denial.reason, DenyReason::Capability(_)),
            "{fault:?}: expected a capability fault, got {}",
            denial.reason
        );
        // The exception trace points at exactly the pointer that misbehaved.
        let report = sys.deallocate_task(id).expect("dealloc");
        assert_eq!(
            report.offending_objects,
            vec![hetsim::ObjectId(fault.offending_object() as u16)],
            "{fault:?}: wrong pointer blamed"
        );
        assert!(report.scrubbed);
    }
}

#[test]
fn coarse_mode_still_contains_the_damage_to_the_task() {
    // Coarse cannot always blame the right object, but the overflowing
    // access never leaves the task's own allocation.
    for fault in [Fault::SortRadixScatterOverflow, Fault::KmpRunawayScan] {
        let mut sys = system_with(
            ProtectionChoice::CapChecker(CheckerConfig::coarse()),
            fault.benchmark().name(),
        );
        let (_, outcome) = run_fault(&mut sys, fault);
        assert!(!outcome.completed(), "{fault:?}: Coarse must refuse too");
    }
}

#[test]
fn iommu_misses_intra_page_overflows_that_fine_catches() {
    // The scatter off-by-one lands in the same page as an adjacent
    // buffer: page-granular protection waves it through.
    let fault = Fault::SortRadixScatterOverflow;
    let mut iommu_sys = system_with(
        ProtectionChoice::Iommu(Default::default()),
        fault.benchmark().name(),
    );
    let (_, outcome) = run_fault(&mut iommu_sys, fault);
    assert!(
        outcome.completed(),
        "the IOMMU should miss this intra-page overflow (that is its weakness)"
    );
}

use capchecker::TaskOutcome;
use hetsim::DenyReason;
use hetsim::TaskId;
