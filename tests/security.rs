//! Cross-crate security integration: the paper's protection claims,
//! enforced end to end.

use cheri_hetero::prelude::*;
use cheri_hetero::threatbench::{attacks, eavesdropper, Cell, Mechanism};

#[test]
fn fine_mode_delivers_object_granularity_everywhere_it_matters() {
    assert_eq!(attacks::spatial_cell(Mechanism::CapFine), Cell::Object);
    assert_eq!(
        attacks::untrusted_offset_cell(Mechanism::CapFine),
        Cell::Object
    );
    assert!(attacks::use_after_free_blocked(Mechanism::CapFine));
    assert!(attacks::fixed_address_blocked(Mechanism::CapFine));
    assert!(attacks::uninitialized_pointer_blocked(Mechanism::CapFine));
    assert!(attacks::capability_forging_blocked(Mechanism::CapFine));
    assert!(attacks::exception_reporting_works(Mechanism::CapFine));
}

#[test]
fn the_protection_ladder_is_strictly_ordered() {
    // No method < IOMMU (page) < {IOPMP, sNPU, Coarse} (task) < Fine (object).
    let rank = |c: Cell| match c {
        Cell::NotProtected => 0,
        Cell::Page => 1,
        Cell::Task => 2,
        Cell::Object => 3,
        _ => panic!("unexpected cell"),
    };
    let cells: Vec<(Mechanism, Cell)> = Mechanism::ALL
        .iter()
        .map(|m| (*m, attacks::spatial_cell(*m)))
        .collect();
    let of = |m: Mechanism| rank(cells.iter().find(|(x, _)| *x == m).expect("present").1);

    assert!(of(Mechanism::NoMethod) < of(Mechanism::Iommu));
    assert!(of(Mechanism::Iommu) < of(Mechanism::Iopmp));
    assert_eq!(of(Mechanism::Iopmp), of(Mechanism::Snpu));
    assert_eq!(of(Mechanism::Iopmp), of(Mechanism::CapCoarse));
    assert!(of(Mechanism::CapCoarse) < of(Mechanism::CapFine));
}

#[test]
fn eavesdropper_is_stopped_by_everything_but_no_method() {
    for mech in Mechanism::ALL {
        let out = eavesdropper::run(mech);
        if mech == Mechanism::NoMethod {
            assert!(!out.stolen.is_empty(), "the unprotected system must leak");
        } else {
            assert!(out.stolen.is_empty(), "{mech} leaked the frame");
        }
        assert!(
            !out.capability_forged,
            "{mech}: a forged capability kept its tag"
        );
    }
}

#[test]
fn benign_workloads_are_never_denied_by_any_mechanism() {
    // "No correct memory access should be blocked by the CapChecker"
    // (§6.2) — and by extension, none of the baselines block them either.
    let bench = Benchmark::Aes;
    for mech in Mechanism::ALL {
        let mut sys = mech.system();
        // The threat fixture registers generic FUs; register this class.
        sys.add_fus(bench.name(), 1);
        let id = sys
            .allocate_task(
                &TaskRequest::accel("benign", bench.name())
                    .rw_buffers(bench.buffers().iter().map(|b| b.size)),
            )
            .expect("allocates");
        for (obj, image) in bench.init(3).iter().enumerate() {
            sys.write_buffer(id, obj, 0, image).expect("init");
        }
        let outcome = sys
            .run_accel_task(id, |eng| bench.kernel(eng))
            .expect("runs");
        assert!(
            outcome.completed(),
            "{mech} denied a correct access: {:?}",
            outcome.denial
        );
    }
}

#[test]
fn accelerators_cannot_mint_capabilities_through_any_path() {
    // Belt and braces over the whole system: after an accelerator writes
    // anywhere it legitimately can, the total number of valid tags in
    // memory never grows.
    let mut sys = HeteroSystem::new(SystemConfig::default());
    sys.add_fus("w", 1);
    let id = sys
        .allocate_task(&TaskRequest::accel("w", "w").rw_buffers([4096]))
        .unwrap();
    // Host spills three capabilities into the task's own buffer.
    let base = sys.cpu_layout(id).unwrap().buffers[0].base;
    let cap = Capability::root().set_bounds(0, 4096).unwrap();
    for i in 0..3 {
        sys.memory_mut()
            .write_capability(base + i * 16, cap.compress(), true)
            .unwrap();
    }
    let before = sys.memory().tag_count();
    sys.run_accel_task(id, |eng| {
        for i in 0..512 {
            eng.store_u64(0, i, 0xffff_ffff_ffff_ffff)?;
        }
        Ok(())
    })
    .unwrap();
    let after = sys.memory().tag_count();
    assert!(
        after <= before,
        "DMA writes created tags: {before} -> {after}"
    );
    assert_eq!(
        after, 0,
        "the overwritten capabilities must all be untagged"
    );
}

#[test]
fn sealed_capabilities_cannot_enter_the_checker() {
    use cheri_hetero::ioprotect::{GrantError, IoProtection};
    let mut checker = CapChecker::new(CheckerConfig::fine());
    let sealed = Capability::root()
        .set_bounds(0, 64)
        .unwrap()
        .seal(42)
        .unwrap();
    assert_eq!(
        checker.grant(TaskId(1), cheri_hetero::hetsim::ObjectId(0), &sealed),
        Err(GrantError::InvalidCapability)
    );
}

#[test]
fn coarse_task_isolation_survives_object_bit_forging() {
    // The §5.2.3 worst case: Coarse cannot separate a task's own objects,
    // but the interconnect-sourced task ID still separates tasks.
    assert_eq!(attacks::spatial_cell(Mechanism::CapCoarse), Cell::Task);
    assert!(attacks::exception_reporting_works(Mechanism::CapCoarse));
}
