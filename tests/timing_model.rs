//! Ground-truth check: the event-driven timing model used by every figure
//! agrees with the cycle-accurate reference simulator on real benchmark
//! traces (not just synthetic ones).

use capchecker::{HeteroSystem, SystemVariant, TaskRequest};
use hetsim::timing::{simulate_accel_system, AccelTask, AccelTimingConfig, BusConfig};
use hetsim::validate::simulate_accel_system_cycle_accurate;
use hetsim::Trace;
use machsuite::Benchmark;

fn protected_trace(bench: Benchmark) -> Trace {
    let mut sys = HeteroSystem::new(SystemVariant::CheriCpuCheriAccel.config());
    sys.add_fus(bench.name(), 1);
    let id = sys
        .allocate_task(
            &TaskRequest::accel("t", bench.name())
                .rw_buffers(bench.buffers().iter().map(|b| b.size)),
        )
        .expect("allocates");
    for (obj, image) in bench.init(0x717).iter().enumerate() {
        sys.write_buffer(id, obj, 0, image).expect("init");
    }
    let outcome = sys
        .run_accel_task(id, |eng| bench.kernel(eng))
        .expect("runs");
    assert!(outcome.completed());
    sys.trace(id).expect("live").expect("ran").clone()
}

#[test]
fn event_model_matches_cycle_accurate_on_real_kernels() {
    // Small-to-medium kernels (the cycle-accurate model steps every cycle,
    // so the multi-hundred-thousand-cycle ones stay in the event model).
    for bench in [
        Benchmark::Aes,
        Benchmark::MdKnn,
        Benchmark::SpmvCrs,
        Benchmark::FftTranspose,
    ] {
        let trace = protected_trace(bench);
        let p = bench.profile();
        let task = AccelTask {
            trace: &trace,
            cfg: AccelTimingConfig {
                lanes: p.lanes,
                compute_per_cycle: p.compute_per_cycle,
                outstanding: p.outstanding,
            },
            start: 0,
        };
        let bus = BusConfig::default().with_checker(1);
        let fast = simulate_accel_system(std::slice::from_ref(&task), &bus);
        let exact = simulate_accel_system_cycle_accurate(&[task], &bus);
        let rel =
            (fast.makespan as f64 - exact.makespan as f64).abs() / exact.makespan.max(1) as f64;
        assert!(
            rel < 0.15,
            "{bench}: event {} vs cycle-accurate {} ({:.1}% apart)",
            fast.makespan,
            exact.makespan,
            rel * 100.0
        );
        assert_eq!(
            fast.bus_beats, exact.bus_beats,
            "{bench}: traffic must be identical"
        );
    }
}

#[test]
fn checker_overhead_sign_agrees_between_models() {
    let bench = Benchmark::MdKnn;
    let trace = protected_trace(bench);
    let p = bench.profile();
    let mk_task = || AccelTask {
        trace: &trace,
        cfg: AccelTimingConfig {
            lanes: p.lanes,
            compute_per_cycle: p.compute_per_cycle,
            outstanding: p.outstanding,
        },
        start: 0,
    };
    for latency in [0u64, 1, 4] {
        let bus = BusConfig::default().with_checker(latency);
        let fast = simulate_accel_system(&[mk_task()], &bus).makespan;
        let exact = simulate_accel_system_cycle_accurate(&[mk_task()], &bus).makespan;
        let base_fast = simulate_accel_system(&[mk_task()], &BusConfig::default()).makespan;
        let base_exact =
            simulate_accel_system_cycle_accurate(&[mk_task()], &BusConfig::default()).makespan;
        assert!(fast >= base_fast);
        assert!(exact >= base_exact);
    }
}
